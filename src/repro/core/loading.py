"""Load per-IP views from a converted SQLite database.

The analysis operates on two shapes of data:

* :class:`IpProfile` -- per-(IP, DBMS) aggregates: event counts, first /
  last day seen, source metadata, and the ordered action sequence used
  for classification and clustering;
* raw event iteration for the table builders in
  :mod:`repro.core.reports`.

Profiles are built from the columnar event form served by
:class:`repro.core.store.AnalysisStore` -- one ordered scan of the
database, shared by every downstream consumer.  :func:`load_ip_profiles`
keeps the original path-based API: given a path it performs one private
scan (no cache side effects); given a store it reuses the store's
columnar load and digest-keyed artifact cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import AnalysisStore, ColumnarEvents

#: Seconds per day, used to bucket timestamps into experiment days.
DAY_SECONDS = 86400.0


@dataclass
class IpProfile:
    """Everything observed from one source IP against one DBMS."""

    src_ip: str
    dbms: str
    country: str = "Unknown"
    asn: int | None = None
    as_name: str = "Unknown"
    as_type: str = "Unknown"
    institutional: bool = False
    connects: int = 0
    login_attempts: int = 0
    #: Distinct (username, password) pairs tried.
    credentials: set[tuple[str, str]] = field(default_factory=set)
    #: Ordered action tokens (commands, queries, HTTP requests).
    actions: list[str] = field(default_factory=list)
    #: Raw payload excerpts, for signature matching.
    raws: list[str] = field(default_factory=list)
    malformed: int = 0
    first_ts: float = float("inf")
    last_ts: float = float("-inf")
    days_seen: set[int] = field(default_factory=set)
    configs: set[str] = field(default_factory=set)

    @property
    def active_days(self) -> int:
        """Number of distinct experiment days with activity."""
        return len(self.days_seen)

    @property
    def interacted(self) -> bool:
        """Whether the IP did anything beyond connecting."""
        return bool(self.actions or self.login_attempts or self.malformed)


def load_ip_profiles(source: "str | Path | AnalysisStore", *,
                     interaction: str | None = None,
                     dbms: str | None = None,
                     start_ts: float | None = None,
                     ) -> dict[tuple[str, str], IpProfile]:
    """Build per-(IP, DBMS) profiles from a converted database.

    Parameters
    ----------
    source:
        SQLite database path produced by the pipeline, or an
        :class:`~repro.core.store.AnalysisStore` (whose columnar load
        and artifact cache are then reused).
    interaction / dbms:
        Optional filters, pushed down into the scan.
    start_ts:
        Experiment start timestamp for day bucketing; defaults to the
        earliest event in the (filtered) database.
    """
    from repro.core.store import borrow_store

    with borrow_store(source) as store:
        return store.profiles(interaction=interaction, dbms=dbms,
                              start_ts=start_ts)


def build_profiles(columns: "ColumnarEvents", start_ts: float,
                   ) -> dict[tuple[str, str], IpProfile]:
    """Fold columnar events (ordered by timestamp, id) into profiles."""
    profiles: dict[tuple[str, str], IpProfile] = {}
    n = columns.n
    if not n:
        return profiles
    timestamps = columns.timestamps.tolist()
    src_ips = columns.src_ip.decode()
    dbms_values = columns.dbms.decode()
    countries = columns.country.decode()
    as_names = columns.as_name.decode()
    as_types = columns.as_type.decode()
    asns = [None if value != value else int(value)  # NaN-safe
            for value in columns.asn.tolist()]
    institutional = columns.institutional.tolist()
    event_types = columns.event_type.decode()
    actions = columns.action.decode()
    usernames = columns.username.decode()
    passwords = columns.password.decode()
    raws = columns.raw.decode()
    configs = columns.config.decode()
    #: Raw payloads repeat heavily across bots; hash each distinct one
    #: once instead of per malformed event.
    digest_cache: dict[str, str] = {}
    for i in range(n):
        key = (src_ips[i], dbms_values[i])
        profile = profiles.get(key)
        if profile is None:
            profile = IpProfile(
                src_ip=src_ips[i], dbms=dbms_values[i],
                country=countries[i], asn=asns[i],
                as_name=as_names[i], as_type=as_types[i],
                institutional=bool(institutional[i]))
            profiles[key] = profile
        timestamp = timestamps[i]
        if timestamp < profile.first_ts:
            profile.first_ts = timestamp
        if timestamp > profile.last_ts:
            profile.last_ts = timestamp
        profile.days_seen.add(int((timestamp - start_ts) // DAY_SECONDS))
        profile.configs.add(configs[i])
        event_type = event_types[i]
        if event_type == "connect":
            profile.connects += 1
        elif event_type == "login_attempt":
            profile.login_attempts += 1
            username = usernames[i] or ""
            profile.credentials.add((username, passwords[i] or ""))
            # The username is part of the clustering term: brute-force
            # tools differ in the account lists they target, and that
            # is what separates their clusters.
            profile.actions.append(f"LOGIN {username}")
        elif event_type in ("command", "query", "http_request"):
            if actions[i]:
                profile.actions.append(actions[i])
            if raws[i]:
                profile.raws.append(raws[i])
        elif event_type == "malformed":
            profile.malformed += 1
            raw = raws[i] or ""
            if raw:
                profile.raws.append(raw)
            # A coarse content fingerprint keeps different probe
            # families (RDP cookies vs JDWP handshakes vs TLS hellos)
            # in different clustering terms while identical bot
            # payloads still collide.
            digest = digest_cache.get(raw)
            if digest is None:
                digest = hashlib.md5(
                    raw.encode("utf-8", "replace")).hexdigest()[:6]
                digest_cache[raw] = digest
            profile.actions.append(f"MALFORMED {digest}")
    return profiles


def action_sequences(profiles: dict[tuple[str, str], IpProfile],
                     *, dbms: str | None = None,
                     require_actions: bool = True,
                     ) -> dict[str, list[str]]:
    """Per-IP action sequences (the clustering "documents").

    When ``require_actions`` is set, IPs that only connected are
    excluded -- the paper notes that clustering pure scanners is
    uninformative.
    """
    sequences: dict[str, list[str]] = {}
    for (src_ip, profile_dbms), profile in profiles.items():
        if dbms is not None and profile_dbms != dbms:
            continue
        if require_actions and not profile.actions:
            continue
        sequences[src_ip] = list(profile.actions)
    return sequences
