"""Campaign tagging (Table 9 and the Section 6.3 case studies).

Clusters of interest get descriptive tags based on recognizable
commands and payload signatures -- botnet names, malware identifiers,
CVE numbers -- mirroring the paper's manual tagging backed by OSINT
lookups.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.loading import IpProfile


@dataclass(frozen=True)
class CampaignSignature:
    """A recognizable attack pattern."""

    tag: str
    category: str
    dbms: str
    description: str
    raw_patterns: tuple[re.Pattern[str], ...] = ()
    #: Minimum login attempts AND distinct credentials to count as a
    #: brute-forcer (single-credential retries are misconfigurations or
    #: scripted one-shot logins, not brute force).
    min_logins: int = 0
    min_distinct_credentials: int = 0


def _p(*patterns: str) -> tuple[re.Pattern[str], ...]:
    return tuple(re.compile(pattern, re.I | re.S) for pattern in patterns)


#: Categories of Table 9.
CAT_UNRELATED = "Scans for services unrelated to the DBMS"
CAT_DBMS = "Attacks on the DBMS"
CAT_DATA = "Attacks on the data in the DBMS"
CAT_SYSTEM = "Attacks on the underlying system"

#: The campaign signature catalog (Table 9 rows).
SIGNATURES: tuple[CampaignSignature, ...] = (
    CampaignSignature(
        "RDP scanning", CAT_UNRELATED, "redis",
        "mstshash cookie probes against Redis",
        raw_patterns=_p(r"mstshash=")),
    CampaignSignature(
        "RDP scanning", CAT_UNRELATED, "postgresql",
        "mstshash cookie probes against PostgreSQL",
        raw_patterns=_p(r"mstshash=")),
    CampaignSignature(
        "JDWP scanning", CAT_UNRELATED, "redis",
        "Java Debug Wire Protocol handshakes",
        raw_patterns=_p(r"JDWP-Handshake")),
    CampaignSignature(
        "CVE-2023-41892 (CraftCMS)", CAT_UNRELATED, "elasticsearch",
        "CraftCMS conditions/render RCE recon",
        raw_patterns=_p(r"conditions/render")),
    CampaignSignature(
        "CVE-2021-22005 (VMware)", CAT_UNRELATED, "elasticsearch",
        "vSphere SOAP version recon",
        raw_patterns=_p(r"RetrieveServiceContent|/sdk\b")),
    CampaignSignature(
        "Brute-force attacks", CAT_DBMS, "redis",
        "AUTH credential guessing", min_logins=2,
        min_distinct_credentials=2),
    CampaignSignature(
        "Brute-force attacks", CAT_DBMS, "postgresql",
        "password credential guessing", min_logins=3,
        min_distinct_credentials=3),
    CampaignSignature(
        "Privilege manipulation", CAT_DBMS, "postgresql",
        "superuser password resets / NOSUPERUSER downgrades",
        raw_patterns=_p(r"ALTER\s+USER .*(WITH\s+PASSWORD|NOSUPERUSER)")),
    CampaignSignature(
        "Data theft and ransom", CAT_DATA, "mongodb",
        "dump, wipe, ransom note",
        raw_patterns=_p(r"BTC")),
    CampaignSignature(
        "P2P infect (Worm)", CAT_SYSTEM, "redis",
        "rogue-master exp.so module chain",
        raw_patterns=_p(r"exp\.so")),
    CampaignSignature(
        "ABCbot (Botnet)", CAT_SYSTEM, "redis",
        "ff.sh cron dropper",
        raw_patterns=_p(r"ff\.sh")),
    CampaignSignature(
        "Kinsing malware", CAT_SYSTEM, "postgresql",
        "COPY FROM PROGRAM base64 dropper",
        raw_patterns=_p(r"FROM\s+PROGRAM .*base64")),
    CampaignSignature(
        "Lucifer botnet", CAT_SYSTEM, "elasticsearch",
        "script_fields Java RCE fetching sss6/sv6",
        raw_patterns=_p(r"Runtime\.getRuntime\(\)\.exec")),
    CampaignSignature(
        "CVE-2022-0543", CAT_SYSTEM, "redis",
        "Lua sandbox escape via package.loadlib",
        raw_patterns=_p(r"package\.loadlib|io\.popen")),
)

#: Ransom-note template fingerprints (Listings 7 and 8).
RANSOM_TEMPLATES: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("template-1", re.compile(r"All your data is backed up", re.I)),
    ("template-2", re.compile(r"Your DB has been back up", re.I)),
)


def tag_profile(profile: IpProfile) -> set[str]:
    """Return the campaign tags matching one profile."""
    tags = set()
    combined = "\n".join(profile.raws)
    for signature in SIGNATURES:
        if signature.dbms != profile.dbms:
            continue
        if signature.min_logins:
            if (profile.login_attempts >= signature.min_logins
                    and len(profile.credentials)
                    >= signature.min_distinct_credentials):
                tags.add(signature.tag)
            continue
        if any(pattern.search(combined)
               for pattern in signature.raw_patterns):
            tags.add(signature.tag)
    return tags


def ransom_templates(profile: IpProfile) -> set[str]:
    """Which ransom-note templates (if any) a profile left behind."""
    combined = "\n".join(profile.raws)
    return {name for name, pattern in RANSOM_TEMPLATES
            if pattern.search(combined)}


@dataclass(frozen=True)
class CampaignRow:
    """One row of Table 9."""

    category: str
    dbms: str
    tag: str
    ip_count: int
    cluster_count: int


def campaign_summary(profiles: dict[tuple[str, str], IpProfile],
                     cluster_labels: dict[tuple[str, str], int]
                     | None = None) -> list[CampaignRow]:
    """Build Table 9: per (category, DBMS, tag) IP and cluster counts.

    ``cluster_labels`` maps (ip, dbms) to a cluster id (from
    :mod:`repro.core.clustering`); when omitted, cluster counts are 0.
    """
    members: dict[tuple[str, str, str], set[str]] = {}
    clusters: dict[tuple[str, str, str], set[int]] = {}
    for key, profile in profiles.items():
        for tag in tag_profile(profile):
            signature = next(s for s in SIGNATURES
                             if s.tag == tag and s.dbms == profile.dbms)
            row_key = (signature.category, profile.dbms, tag)
            members.setdefault(row_key, set()).add(profile.src_ip)
            if cluster_labels and key in cluster_labels:
                clusters.setdefault(row_key, set()).add(
                    cluster_labels[key])
    category_order = [CAT_UNRELATED, CAT_DBMS, CAT_DATA, CAT_SYSTEM]
    rows = [CampaignRow(category, dbms, tag, len(ips),
                        len(clusters.get((category, dbms, tag), set())))
            for (category, dbms, tag), ips in members.items()]
    rows.sort(key=lambda row: (category_order.index(row.category),
                               row.dbms, row.tag))
    return rows
