"""Agglomerative hierarchical clustering, from scratch.

Implements the paper's clustering method -- bottom-up agglomeration of
TF feature vectors under Euclidean distance with Ward linkage -- using
the nearest-neighbor-chain algorithm and Lance-Williams distance
updates.  The output linkage matrix follows the SciPy convention
``(cluster_a, cluster_b, height, size)``, so results can be
cross-checked against ``scipy.cluster.hierarchy`` (the property tests
do exactly that).

Single, complete, and average linkage are also provided for the
ablation benches.

Distances are held in **condensed** (upper-triangle) form -- half the
memory of the previous full (n, n) matrix, and the full matrix is never
materialized (the condensed array is filled row-block by row-block).
Retired and diagonal entries read as ``inf``, so the chain step's
nearest-neighbor search is a single ``argmin`` over a reused scratch
row: no per-step row copy, no masked writes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs

_LINKAGES = ("ward", "single", "complete", "average")


def pairwise_sq_euclidean(matrix: np.ndarray) -> np.ndarray:
    """Full (n, n) squared-Euclidean distance matrix."""
    norms = np.einsum("ij,ij->i", matrix, matrix)
    distances = norms[:, None] + norms[None, :] - 2.0 * (matrix @ matrix.T)
    np.maximum(distances, 0.0, out=distances)
    np.fill_diagonal(distances, 0.0)
    return distances


def condensed_sq_euclidean(matrix: np.ndarray) -> np.ndarray:
    """Upper-triangle squared-Euclidean distances, row-major.

    Entry ``(i, j)`` (``i < j``) lives at
    ``i * n - i * (i + 1) // 2 + (j - i - 1)``.  Built one row block at
    a time, so peak memory is the condensed array itself -- half the
    full matrix -- plus one row.
    """
    matrix = np.asarray(matrix, dtype=float)
    n = len(matrix)
    norms = np.einsum("ij,ij->i", matrix, matrix)
    out = np.empty(n * (n - 1) // 2)
    start = 0
    for i in range(n - 1):
        stop = start + n - i - 1
        block = out[start:stop]
        np.dot(matrix[i + 1:], matrix[i], out=block)
        block *= -2.0
        block += norms[i]
        block += norms[i + 1:]
        start = stop
    np.maximum(out, 0.0, out=out)
    return out


class _CondensedMatrix:
    """Mutable condensed distance matrix with inf-retired entries.

    Row reads land in a preallocated scratch buffer, so the chain loop
    performs zero per-step allocations: the right part of a row is a
    contiguous slice of the condensed array and the left part is a
    strided gather through a reused index buffer.
    """

    __slots__ = ("n", "data", "_starts", "_row", "_idx")

    def __init__(self, data: np.ndarray, n: int):
        self.n = n
        self.data = data
        indices = np.arange(n, dtype=np.int64)
        # index(i, j) for i < j is _starts[i] + j.
        self._starts = indices * n - indices * (indices + 1) // 2 - indices - 1
        self._row = np.empty(n)
        self._idx = np.empty(n, dtype=np.int64)

    def get(self, i: int, j: int) -> float:
        if i > j:
            i, j = j, i
        return self.data[self._starts[i] + j]

    def row(self, r: int) -> np.ndarray:
        """Distances from ``r`` to every node (``inf`` at ``r`` itself),
        written into the scratch buffer and returned."""
        row, n, data = self._row, self.n, self.data
        if r:
            idx = self._idx[:r]
            np.add(self._starts[:r], r, out=idx)
            np.take(data, idx, out=row[:r])
        row[r] = np.inf
        if r + 1 < n:
            start = self._starts[r] + r + 1
            row[r + 1:] = data[start:start + n - r - 1]
        return row

    def indices_to(self, r: int, nodes: np.ndarray) -> np.ndarray:
        """Condensed indices of the pairs ``(r, node)``."""
        return np.where(nodes < r, self._starts[nodes] + r,
                        self._starts[r] + nodes)

    def retire(self, r: int) -> None:
        """Set every distance involving ``r`` to ``inf``."""
        n, data = self.n, self.data
        if r:
            idx = self._idx[:r]
            np.add(self._starts[:r], r, out=idx)
            data[idx] = np.inf
        if r + 1 < n:
            start = self._starts[r] + r + 1
            data[start:start + n - r - 1] = np.inf


def linkage(matrix: np.ndarray, method: str = "ward") -> np.ndarray:
    """Compute the agglomeration dendrogram of ``matrix`` rows.

    Returns an (n-1, 4) array of merges ``(a, b, height, size)`` in
    merge order, heights non-decreasing, cluster ids per the SciPy
    convention (originals ``0..n-1``, merged clusters ``n..2n-2``).

    Raises
    ------
    ValueError
        For unknown methods or fewer than two observations.
    """
    if method not in _LINKAGES:
        raise ValueError(f"unknown linkage method {method!r}")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or len(matrix) < 2:
        raise ValueError("linkage needs a 2-D matrix with >= 2 rows")
    telemetry = obs.current()
    start = time.perf_counter()
    n = len(matrix)
    condensed = condensed_sq_euclidean(matrix)
    if method != "ward":
        np.sqrt(condensed, out=condensed)
    distances = _CondensedMatrix(condensed, n)

    size = np.ones(n)
    active = np.ones(n, dtype=bool)
    cluster_id = np.arange(n)
    next_id = n
    merges = []
    chain: list[int] = []

    while len(merges) < n - 1:
        if not chain:
            chain.append(int(np.argmax(active)))
        top = chain[-1]
        # Retired entries and the diagonal already read as inf, so the
        # scratch row needs no copy or masking before the argmin.
        row = distances.row(top)
        nearest = int(np.argmin(row))
        if len(chain) > 1 and distances.get(top, chain[-2]) <= row[nearest]:
            nearest = chain.pop(-2)
            chain.pop()  # remove `top`
            merges.append(_merge(distances, size, active, cluster_id,
                                 top, nearest, next_id, method))
            next_id += 1
        else:
            chain.append(nearest)

    result = np.array(merges)
    # Reducibility guarantees non-decreasing heights up to float noise;
    # sort to normalize, remapping ids to the new merge order.
    order = np.argsort(result[:, 2], kind="stable")
    elapsed = time.perf_counter() - start
    telemetry.metrics.inc("clustering.linkage_calls", method=method)
    telemetry.metrics.inc("clustering.merges", len(merges), method=method)
    telemetry.metrics.observe("clustering.linkage_seconds", elapsed,
                              method=method)
    telemetry.metrics.observe("clustering.leaves", n, method=method)
    return _reorder(result, order, n)


def _merge(distances: _CondensedMatrix, size: np.ndarray,
           active: np.ndarray, cluster_id: np.ndarray, a: int, b: int,
           next_id: int, method: str) -> tuple[float, float, float, float]:
    d_ab = distances.get(a, b)
    n_a, n_b = size[a], size[b]
    others = np.flatnonzero(active)
    others = others[(others != a) & (others != b)]
    indices_a = distances.indices_to(a, others)
    d_a = distances.data[indices_a]
    d_b = distances.data[distances.indices_to(b, others)]
    if method == "ward":
        n_k = size[others]
        updated = ((n_a + n_k) * d_a + (n_b + n_k) * d_b
                   - n_k * d_ab) / (n_a + n_b + n_k)
        height = float(np.sqrt(d_ab))
    elif method == "single":
        updated = np.minimum(d_a, d_b)
        height = float(d_ab)
    elif method == "complete":
        updated = np.maximum(d_a, d_b)
        height = float(d_ab)
    else:  # average
        updated = (n_a * d_a + n_b * d_b) / (n_a + n_b)
        height = float(d_ab)
    record = (float(cluster_id[a]), float(cluster_id[b]), height,
              float(n_a + n_b))
    # The merged cluster takes slot ``a``; slot ``b`` is retired.
    distances.data[indices_a] = updated
    distances.retire(b)
    size[a] = n_a + n_b
    active[b] = False
    cluster_id[a] = next_id
    return record


def _reorder(result: np.ndarray, order: np.ndarray, n: int) -> np.ndarray:
    """Sort merges by height and remap merged-cluster ids accordingly."""
    remap = {}
    for new_index, old_index in enumerate(order):
        remap[n + old_index] = n + new_index
    sorted_result = result[order].copy()
    for row in sorted_result:
        for column in (0, 1):
            original = int(row[column])
            if original >= n:
                row[column] = remap[original]
        if row[0] > row[1]:
            row[0], row[1] = row[1], row[0]
    return sorted_result


def ward_linkage(matrix: np.ndarray) -> np.ndarray:
    """Ward-linkage dendrogram (the paper's configuration)."""
    return linkage(matrix, "ward")


def cut_tree(merges: np.ndarray, n_leaves: int, *,
             n_clusters: int | None = None,
             distance_threshold: float | None = None) -> np.ndarray:
    """Flatten a dendrogram into integer labels.

    Exactly one of ``n_clusters`` / ``distance_threshold`` must be
    given.  With a threshold, merges with height strictly above it are
    not applied (SciPy ``fcluster(criterion="distance")`` semantics keep
    merges at height <= t).
    """
    if (n_clusters is None) == (distance_threshold is None):
        raise ValueError(
            "specify exactly one of n_clusters / distance_threshold")
    if n_clusters is not None:
        if not 1 <= n_clusters <= n_leaves:
            raise ValueError("n_clusters out of range")
        applied = len(merges) - (n_clusters - 1)
    else:
        applied = int(np.searchsorted(merges[:, 2], distance_threshold,
                                      side="right"))
    parent = list(range(n_leaves + len(merges)))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for index in range(applied):
        a, b = int(merges[index, 0]), int(merges[index, 1])
        merged = n_leaves + index
        parent[find(a)] = merged
        parent[find(b)] = merged
    roots: dict[int, int] = {}
    labels = np.empty(n_leaves, dtype=int)
    for leaf in range(n_leaves):
        root = find(leaf)
        labels[leaf] = roots.setdefault(root, len(roots))
    return labels


@dataclass
class AgglomerativeClustering:
    """Scikit-learn-flavored wrapper: fit a matrix, read ``labels_``.

    Parameters
    ----------
    n_clusters:
        Cut the dendrogram to exactly this many clusters, or
    distance_threshold:
        cut at this merge height instead.
    method:
        Linkage method (default ``ward``, the paper's choice).
    """

    n_clusters: int | None = None
    distance_threshold: float | None = None
    method: str = "ward"
    labels_: np.ndarray | None = field(default=None, repr=False)
    merges_: np.ndarray | None = field(default=None, repr=False)

    def fit(self, matrix: np.ndarray, *,
            linkage_matrix: np.ndarray | None = None,
            ) -> "AgglomerativeClustering":
        """Cluster the rows of ``matrix``.

        ``linkage_matrix`` injects a precomputed dendrogram for these
        rows (e.g. from the :class:`repro.core.store.AnalysisStore`
        linkage cache); the O(n^2) agglomeration is then skipped and
        the hit is recorded under ``clustering.linkage_cache_hits``.
        """
        matrix = np.asarray(matrix, dtype=float)
        if len(matrix) == 1:
            self.merges_ = np.empty((0, 4))
            self.labels_ = np.zeros(1, dtype=int)
            return self
        if linkage_matrix is not None:
            obs.current().metrics.inc("clustering.linkage_cache_hits",
                                      method=self.method)
            self.merges_ = linkage_matrix
        else:
            self.merges_ = linkage(matrix, self.method)
        self.labels_ = cut_tree(self.merges_, len(matrix),
                                n_clusters=self.n_clusters,
                                distance_threshold=self.distance_threshold)
        obs.current().metrics.observe("clustering.n_clusters",
                                      self.n_clusters_, method=self.method)
        return self

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        """Cluster and return the labels."""
        return self.fit(matrix).labels_

    @property
    def n_clusters_(self) -> int:
        """Number of clusters found."""
        if self.labels_ is None:
            raise RuntimeError("call fit first")
        return int(self.labels_.max()) + 1
