"""Honeypot-set intersections (the Figure 4 upset plot).

For the medium/high tier, each source IP touches some subset of the
four honeypot families; the upset plot shows how many IPs fall into
each exact subset.  Most IPs hit a single family, with a notable
overlap cohort probing several -- including the RDP scanners seen on
both Redis and PostgreSQL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.loading import IpProfile


@dataclass(frozen=True)
class UpsetData:
    """Exact-subset membership counts."""

    #: Sorted family names (the plot's set axis).
    families: tuple[str, ...]
    #: combination (frozenset of families) -> number of IPs in exactly
    #: that combination.
    combinations: dict[frozenset, int]

    def count(self, *families: str) -> int:
        """IPs seen on exactly this combination of families."""
        return self.combinations.get(frozenset(families), 0)

    def total_unique(self) -> int:
        """Total unique IPs."""
        return sum(self.combinations.values())

    def per_family_totals(self) -> dict[str, int]:
        """IPs per family (the set-size bars; overlaps counted in
        every family they touch)."""
        totals = {family: 0 for family in self.families}
        for combination, count in self.combinations.items():
            for family in combination:
                totals[family] += count
        return totals

    def single_family_fraction(self) -> float:
        """Fraction of IPs touching exactly one family."""
        total = self.total_unique()
        if total == 0:
            return 0.0
        singles = sum(count for combination, count
                      in self.combinations.items()
                      if len(combination) == 1)
        return singles / total

    def rows(self) -> list[tuple[str, int]]:
        """(combination, count) rows, largest first."""
        ordered = sorted(self.combinations.items(),
                         key=lambda item: (-item[1],
                                           sorted(item[0])))
        return [("+".join(sorted(combination)), count)
                for combination, count in ordered]


def upset_intersections(profiles: dict[tuple[str, str], IpProfile],
                        ) -> UpsetData:
    """Compute Figure 4 from medium/high profiles."""
    memberships: dict[str, set[str]] = {}
    for (ip, dbms), _profile in profiles.items():
        memberships.setdefault(ip, set()).add(dbms)
    families = tuple(sorted({dbms for sets in memberships.values()
                             for dbms in sets}))
    combinations: dict[frozenset, int] = {}
    for ip, family_set in memberships.items():
        key = frozenset(family_set)
        combinations[key] = combinations.get(key, 0) + 1
    return UpsetData(families, combinations)
