"""The paper's analysis methodology.

Everything in this package consumes only the SQLite databases produced
by :mod:`repro.pipeline` -- never the traffic generator -- mirroring the
paper's separation between collection and analysis:

* :mod:`repro.core.store` -- the columnar analysis store: one scan,
  content-keyed caching of every derived artifact,
* :mod:`repro.core.loading` -- per-IP event/action-sequence extraction,
* :mod:`repro.core.classification` -- scanning / scouting / exploiting,
* :mod:`repro.core.tf` -- term-frequency feature vectors,
* :mod:`repro.core.clustering` -- agglomerative hierarchical clustering
  (Ward linkage, from scratch),
* :mod:`repro.core.retention` -- client retention CDFs (Figs. 3, 5),
* :mod:`repro.core.temporal` -- hourly traffic series (Figs. 2, 6-9),
* :mod:`repro.core.intersections` -- honeypot-set intersections (Fig. 4),
* :mod:`repro.core.bruteforce` -- credential statistics (Tables 5, 12),
* :mod:`repro.core.campaigns` -- campaign tagging (Table 9),
* :mod:`repro.core.reports` -- the remaining tables of the paper.
"""

from repro.core.classification import BehaviorClass, classify_ips
from repro.core.clustering import AgglomerativeClustering, ward_linkage
from repro.core.loading import action_sequences, load_ip_profiles
from repro.core.tf import TfVectorizer
from repro.core.retention import (retention_by_class, retention_by_dbms,
                                  retention_overall)
from repro.core.temporal import hourly_series, per_dbms_series
from repro.core.intersections import upset_intersections
from repro.core.bruteforce import credential_stats, logins_by_country
from repro.core.campaigns import campaign_summary, tag_profile
from repro.core.reports import classification_table, cluster_dbms
from repro.core.review import review_clusters, review_dbms
from repro.core.store import AnalysisStore, borrow_store

__all__ = [
    "AnalysisStore",
    "borrow_store",
    "review_clusters",
    "review_dbms",
    "BehaviorClass",
    "classify_ips",
    "AgglomerativeClustering",
    "ward_linkage",
    "action_sequences",
    "load_ip_profiles",
    "TfVectorizer",
    "retention_by_class",
    "retention_by_dbms",
    "retention_overall",
    "hourly_series",
    "per_dbms_series",
    "upset_intersections",
    "credential_stats",
    "logins_by_country",
    "campaign_summary",
    "tag_profile",
    "classification_table",
    "cluster_dbms",
]
