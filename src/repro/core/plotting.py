"""Plain-text figure rendering.

The benches regenerate the paper's figures as data; this module renders
them as terminal-friendly charts so `benchmarks/_output/` contains
actual figures, not just tables:

* :func:`sparkline` -- one-line unicode intensity strip,
* :func:`line_chart` -- multi-row ASCII line chart for time series,
* :func:`cdf_chart` -- step-plot rendering for retention CDFs.
"""

from __future__ import annotations

import math

_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Render ``values`` as a one-line unicode sparkline."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0 or not math.isfinite((len(_SPARKS) - 1) / span):
        # Flat series, or a span so small (subnormal) that scaling
        # overflows -- render as flat.
        return _SPARKS[0] * len(values)
    scale = (len(_SPARKS) - 1) / span
    return "".join(_SPARKS[min(len(_SPARKS) - 1,
                               int((value - low) * scale))]
                   for value in values)


def line_chart(values: list[float], *, height: int = 10,
               width: int = 72, label: str = "") -> str:
    """Render a time series as an ASCII chart.

    The series is resampled (by bucket means) to at most ``width``
    columns.

    Raises
    ------
    ValueError
        For empty input or non-positive dimensions.
    """
    if not values:
        raise ValueError("cannot chart an empty series")
    if height < 2 or width < 2:
        raise ValueError("chart dimensions must be at least 2x2")
    resampled = _resample(values, width)
    low, high = min(resampled), max(resampled)
    span = (high - low) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = low + span * (level - 0.5) / height
        cells = "".join("█" if value >= threshold else " "
                        for value in resampled)
        prefix = (f"{high:8.1f} |" if level == height
                  else f"{low:8.1f} |" if level == 1 else "         |")
        rows.append(prefix + cells)
    rows.append("         +" + "-" * len(resampled))
    if label:
        rows.append(f"          {label}")
    return "\n".join(rows)


def cdf_chart(points: list[tuple[float, float]], *, height: int = 10,
              width: int = 60, label: str = "") -> str:
    """Render an empirical CDF (sorted (x, F(x)) points) as a step plot.

    Raises
    ------
    ValueError
        For empty input.
    """
    if not points:
        raise ValueError("cannot chart an empty CDF")
    max_x = max(x for x, _y in points)
    columns = []
    for column in range(width):
        x = max_x * (column + 1) / width
        y = 0.0
        for point_x, point_y in points:
            if point_x <= x:
                y = point_y
            else:
                break
        columns.append(y)
    rows = []
    for level in range(height, 0, -1):
        threshold = (level - 0.5) / height
        cells = "".join("█" if y >= threshold else " "
                        for y in columns)
        prefix = ("    1.00 |" if level == height
                  else "    0.00 |" if level == 1 else "         |")
        rows.append(prefix + cells)
    rows.append("         +" + "-" * width
                + f"  (x: 0..{max_x:g}{' ' + label if label else ''})")
    return "\n".join(rows)


def _resample(values: list[float], width: int) -> list[float]:
    if len(values) <= width:
        return [float(value) for value in values]
    bucket = len(values) / width
    resampled = []
    for index in range(width):
        start = int(index * bucket)
        end = max(start + 1, int((index + 1) * bucket))
        chunk = values[start:end]
        resampled.append(sum(chunk) / len(chunk))
    return resampled
