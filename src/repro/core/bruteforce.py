"""Brute-force credential statistics (Tables 5 and 12, Section 5).

Per-country login volumes, top credential pairs, and the unique
username / password / combination counts that characterize how much
effort database brute-forcers invest.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.pipeline.convert import open_database


@dataclass(frozen=True)
class CountryLoginRow:
    """One row of Table 5."""

    country: str
    logins: int
    login_ips: int
    total_ips: int
    by_dbms: dict[str, int]


def logins_by_country(db_path: str | Path,
                      top: int = 10) -> list[CountryLoginRow]:
    """Table 5: top countries by login attempts."""
    connection = open_database(db_path)
    try:
        totals = dict(connection.execute(
            "SELECT country, COUNT(DISTINCT src_ip) FROM events "
            "GROUP BY country"))
        rows: dict[str, dict] = {}
        cursor = connection.execute(
            "SELECT country, dbms, COUNT(*) AS logins, "
            "COUNT(DISTINCT src_ip) AS ips FROM events "
            "WHERE event_type = 'login_attempt' "
            "GROUP BY country, dbms")
        for country, dbms, logins, _ips in cursor:
            entry = rows.setdefault(country, {"logins": 0, "by_dbms": {}})
            entry["logins"] += logins
            entry["by_dbms"][dbms] = logins
        login_ips = dict(connection.execute(
            "SELECT country, COUNT(DISTINCT src_ip) FROM events "
            "WHERE event_type = 'login_attempt' GROUP BY country"))
    finally:
        connection.close()
    result = [CountryLoginRow(country, entry["logins"],
                              login_ips.get(country, 0),
                              totals.get(country, 0), entry["by_dbms"])
              for country, entry in rows.items()]
    result.sort(key=lambda row: -row.logins)
    return result[:top]


@dataclass(frozen=True)
class CredentialStats:
    """Aggregate credential statistics for one DBMS (Section 5)."""

    dbms: str
    total_attempts: int
    unique_usernames: int
    unique_passwords: int
    unique_combinations: int
    top_usernames: list[tuple[str, int]]
    top_passwords: list[tuple[str, int]]
    top_pairs: list[tuple[tuple[str, str], int]]


def credential_stats(db_path: str | Path, dbms: str,
                     top: int = 10) -> CredentialStats:
    """Table 12 plus the uniqueness counts for one DBMS."""
    connection = open_database(db_path)
    try:
        cursor = connection.execute(
            "SELECT username, password, COUNT(*) FROM events "
            "WHERE event_type = 'login_attempt' AND dbms = ? "
            "GROUP BY username, password", (dbms,))
        usernames: dict[str, int] = {}
        passwords: dict[str, int] = {}
        pairs: dict[tuple[str, str], int] = {}
        total = 0
        for username, password, count in cursor:
            username = username or ""
            password = password or ""
            total += count
            usernames[username] = usernames.get(username, 0) + count
            passwords[password] = passwords.get(password, 0) + count
            pairs[(username, password)] = count
    finally:
        connection.close()
    return CredentialStats(
        dbms=dbms,
        total_attempts=total,
        unique_usernames=len(usernames),
        unique_passwords=len(passwords),
        unique_combinations=len(pairs),
        top_usernames=sorted(usernames.items(),
                             key=lambda item: -item[1])[:top],
        top_passwords=sorted(passwords.items(),
                             key=lambda item: -item[1])[:top],
        top_pairs=sorted(pairs.items(), key=lambda item: -item[1])[:top],
    )


def brute_force_ips(db_path: str | Path) -> set[str]:
    """Sources with at least one login attempt (the paper's definition
    of a brute-force attacker in Section 5)."""
    connection = open_database(db_path)
    try:
        return {row[0] for row in connection.execute(
            "SELECT DISTINCT src_ip FROM events "
            "WHERE event_type = 'login_attempt'")}
    finally:
        connection.close()


def average_attempts_per_client(db_path: str | Path) -> float:
    """Average login attempts over *all* observed clients."""
    connection = open_database(db_path)
    try:
        (logins,) = connection.execute(
            "SELECT COUNT(*) FROM events "
            "WHERE event_type = 'login_attempt'").fetchone()
        (clients,) = connection.execute(
            "SELECT COUNT(DISTINCT src_ip) FROM events").fetchone()
    finally:
        connection.close()
    return logins / clients if clients else 0.0
