"""Brute-force credential statistics (Tables 5 and 12, Section 5).

Per-country login volumes, top credential pairs, and the unique
username / password / combination counts that characterize how much
effort database brute-forcers invest.

Each builder accepts either a converted database path (opening an
ephemeral connection, as before) or an
:class:`~repro.core.store.AnalysisStore`, in which case the store's
single shared connection serves the aggregate queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import AnalysisStore

Source = "str | Path | AnalysisStore"


@dataclass(frozen=True)
class CountryLoginRow:
    """One row of Table 5."""

    country: str
    logins: int
    login_ips: int
    total_ips: int
    by_dbms: dict[str, int]


def logins_by_country(db_path: "str | Path | AnalysisStore",
                      top: int = 10) -> list[CountryLoginRow]:
    """Table 5: top countries by login attempts."""
    from repro.core.store import borrow_store

    with borrow_store(db_path) as store:
        totals = dict(store.rows(
            "SELECT country, COUNT(DISTINCT src_ip) FROM events "
            "GROUP BY country"))
        rows: dict[str, dict] = {}
        per_dbms = store.rows(
            "SELECT country, dbms, COUNT(*) AS logins, "
            "COUNT(DISTINCT src_ip) AS ips FROM events "
            "WHERE event_type = 'login_attempt' "
            "GROUP BY country, dbms")
        for country, dbms, logins, _ips in per_dbms:
            entry = rows.setdefault(country, {"logins": 0, "by_dbms": {}})
            entry["logins"] += logins
            entry["by_dbms"][dbms] = logins
        login_ips = dict(store.rows(
            "SELECT country, COUNT(DISTINCT src_ip) FROM events "
            "WHERE event_type = 'login_attempt' GROUP BY country"))
    result = [CountryLoginRow(country, entry["logins"],
                              login_ips.get(country, 0),
                              totals.get(country, 0), entry["by_dbms"])
              for country, entry in rows.items()]
    result.sort(key=lambda row: -row.logins)
    return result[:top]


@dataclass(frozen=True)
class CredentialStats:
    """Aggregate credential statistics for one DBMS (Section 5)."""

    dbms: str
    total_attempts: int
    unique_usernames: int
    unique_passwords: int
    unique_combinations: int
    top_usernames: list[tuple[str, int]]
    top_passwords: list[tuple[str, int]]
    top_pairs: list[tuple[tuple[str, str], int]]


def credential_stats(db_path: "str | Path | AnalysisStore", dbms: str,
                     top: int = 10) -> CredentialStats:
    """Table 12 plus the uniqueness counts for one DBMS."""
    from repro.core.store import borrow_store

    with borrow_store(db_path) as store:
        pair_rows = store.rows(
            "SELECT username, password, COUNT(*) FROM events "
            "WHERE event_type = 'login_attempt' AND dbms = ? "
            "GROUP BY username, password", (dbms,))
        usernames: dict[str, int] = {}
        passwords: dict[str, int] = {}
        pairs: dict[tuple[str, str], int] = {}
        total = 0
        for username, password, count in pair_rows:
            username = username or ""
            password = password or ""
            total += count
            usernames[username] = usernames.get(username, 0) + count
            passwords[password] = passwords.get(password, 0) + count
            pairs[(username, password)] = count
    return CredentialStats(
        dbms=dbms,
        total_attempts=total,
        unique_usernames=len(usernames),
        unique_passwords=len(passwords),
        unique_combinations=len(pairs),
        top_usernames=sorted(usernames.items(),
                             key=lambda item: -item[1])[:top],
        top_passwords=sorted(passwords.items(),
                             key=lambda item: -item[1])[:top],
        top_pairs=sorted(pairs.items(), key=lambda item: -item[1])[:top],
    )


def brute_force_ips(db_path: "str | Path | AnalysisStore") -> set[str]:
    """Sources with at least one login attempt (the paper's definition
    of a brute-force attacker in Section 5)."""
    from repro.core.store import borrow_store

    with borrow_store(db_path) as store:
        return {row[0] for row in store.rows(
            "SELECT DISTINCT src_ip FROM events "
            "WHERE event_type = 'login_attempt'")}


def average_attempts_per_client(db_path: "str | Path | AnalysisStore",
                                ) -> float:
    """Average login attempts over *all* observed clients."""
    from repro.core.store import borrow_store

    with borrow_store(db_path) as store:
        [(logins,)] = store.rows(
            "SELECT COUNT(*) FROM events "
            "WHERE event_type = 'login_attempt'")
        [(clients,)] = store.rows(
            "SELECT COUNT(DISTINCT src_ip) FROM events")
    return logins / clients if clients else 0.0
