"""Blocking effectiveness analysis.

Section 6.2 of the paper argues that "identifying and blocking the
exploiting IP address would be much more effective than simply blocking
a scanning or scouting IP address", because exploiters keep returning.
This module quantifies that claim on a converted database: for each
behavior class, how much *future* activity would a block at first
sighting have prevented?
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.classification import BehaviorClass, classify_ips
from repro.core.loading import IpProfile
from repro.pipeline.convert import open_database


@dataclass(frozen=True)
class BlockingRow:
    """Effectiveness of blocking one behavior class at first sighting."""

    behavior_class: BehaviorClass
    ips: int
    total_events: int
    prevented_events: int
    #: Mean number of later-day return visits per IP.
    mean_return_days: float

    @property
    def prevented_fraction(self) -> float:
        if self.total_events == 0:
            return 0.0
        return self.prevented_events / self.total_events


def blocking_effectiveness(db_path: str | Path,
                           profiles: dict[tuple[str, str], IpProfile],
                           ) -> list[BlockingRow]:
    """Per-class payoff of a block-at-first-sighting policy.

    "Prevented" counts every event of an IP after its first active day
    (a same-day block is assumed too slow, matching the paper's framing
    of blocklists that update daily).
    """
    classifications = classify_ips(profiles)
    severity = {BehaviorClass.SCANNING: 0, BehaviorClass.SCOUTING: 1,
                BehaviorClass.EXPLOITING: 2}
    per_ip_class: dict[str, BehaviorClass] = {}
    for key, classification in classifications.items():
        ip = key[0]
        primary = classification.primary
        current = per_ip_class.get(ip)
        if current is None or severity[primary] > severity[current]:
            per_ip_class[ip] = primary

    connection = open_database(db_path)
    try:
        (start,) = connection.execute(
            "SELECT MIN(timestamp) FROM events").fetchone()
        totals: dict[str, int] = {}
        prevented: dict[str, int] = {}
        first_day: dict[str, int] = {}
        return_days: dict[str, set[int]] = {}
        cursor = connection.execute(
            "SELECT src_ip, timestamp FROM events ORDER BY timestamp")
        for src_ip, timestamp in cursor:
            day = int((timestamp - start) // 86400)
            totals[src_ip] = totals.get(src_ip, 0) + 1
            if src_ip not in first_day:
                first_day[src_ip] = day
                return_days[src_ip] = set()
            elif day > first_day[src_ip]:
                prevented[src_ip] = prevented.get(src_ip, 0) + 1
                return_days[src_ip].add(day)
    finally:
        connection.close()

    rows = []
    for behavior_class in BehaviorClass:
        ips = [ip for ip, cls in per_ip_class.items()
               if cls is behavior_class and ip in totals]
        total = sum(totals[ip] for ip in ips)
        saved = sum(prevented.get(ip, 0) for ip in ips)
        returns = (sum(len(return_days.get(ip, ())) for ip in ips)
                   / len(ips)) if ips else 0.0
        rows.append(BlockingRow(behavior_class, len(ips), total, saved,
                                returns))
    return rows
