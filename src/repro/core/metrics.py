"""Clustering quality metrics, from scratch.

Used by the ablation benches to compare linkage methods and feature
choices quantitatively:

* :func:`silhouette_score` -- mean silhouette coefficient over all
  samples (cohesion vs separation, in [-1, 1]),
* :func:`adjusted_rand_index` -- chance-corrected agreement between two
  partitions, 1.0 for identical partitions, ~0 for independent ones.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import pairwise_sq_euclidean


def silhouette_score(matrix: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient of a clustering.

    Samples in singleton clusters contribute 0, per the standard
    convention.

    Raises
    ------
    ValueError
        If fewer than 2 clusters are present (silhouette undefined).
    """
    matrix = np.asarray(matrix, dtype=float)
    labels = np.asarray(labels)
    if len(matrix) != len(labels):
        raise ValueError("matrix and labels must have equal length")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least 2 clusters")
    distances = np.sqrt(pairwise_sq_euclidean(matrix))
    scores = np.zeros(len(matrix))
    members = {label: np.flatnonzero(labels == label)
               for label in unique}
    for index in range(len(matrix)):
        own = members[labels[index]]
        if len(own) == 1:
            continue
        a = distances[index, own].sum() / (len(own) - 1)
        b = min(distances[index, members[other]].mean()
                for other in unique if other != labels[index])
        denominator = max(a, b)
        scores[index] = 0.0 if denominator == 0 else (b - a) / denominator
    return float(scores.mean())


def adjusted_rand_index(labels_a: np.ndarray,
                        labels_b: np.ndarray) -> float:
    """Adjusted Rand index between two partitions of the same samples."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if len(labels_a) != len(labels_b):
        raise ValueError("partitions must cover the same samples")
    n = len(labels_a)
    if n == 0:
        raise ValueError("empty partitions")
    values_a, inverse_a = np.unique(labels_a, return_inverse=True)
    values_b, inverse_b = np.unique(labels_b, return_inverse=True)
    contingency = np.zeros((len(values_a), len(values_b)), dtype=np.int64)
    np.add.at(contingency, (inverse_a, inverse_b), 1)

    def comb2(array: np.ndarray) -> float:
        return float((array * (array - 1) // 2).sum())

    sum_cells = comb2(contingency)
    sum_rows = comb2(contingency.sum(axis=1))
    sum_cols = comb2(contingency.sum(axis=0))
    total = n * (n - 1) / 2
    expected = sum_rows * sum_cols / total if total else 0.0
    maximum = (sum_rows + sum_cols) / 2
    if maximum == expected:
        # Degenerate partitions (e.g. both all-singletons): identical
        # partitions score 1, anything else 0.
        return 1.0 if (labels_a == labels_a[0]).all() == (
            labels_b == labels_b[0]).all() and sum_rows == sum_cols \
            and sum_cells == sum_rows else 0.0
    return (sum_cells - expected) / (maximum - expected)
