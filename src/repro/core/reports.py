"""Table builders for the remaining evaluation tables.

Each function regenerates one table of the paper from a converted
SQLite database (plus, for Table 8/9, the clustering output).  Pretty
printers render the rows the way the benches report them.

Every SQL-backed builder accepts either a database path (a private
read-only connection, as before) or an
:class:`~repro.core.store.AnalysisStore`, in which case the store's
shared connection and digest-keyed artifact cache (profiles, TF
matrices, linkage) are reused across builders -- the full report suite
then scans the events table once cold and not at all warm.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path  # noqa: F401 (documented Source alias)

from repro.core.classification import (BehaviorClass, classify_ips,
                                       primary_counts)
from repro.core.clustering import AgglomerativeClustering
from repro.core.loading import IpProfile, action_sequences
from repro.core.store import AnalysisStore, borrow_store
from repro.core.tf import TfVectorizer

#: SQL-backed builders take a path or an AnalysisStore.
Source = "str | Path | AnalysisStore"

# -- Table 6: top ASN ----------------------------------------------------------


@dataclass(frozen=True)
class AsnRow:
    """One row of Table 6."""

    asn: int
    as_name: str
    ip_count: int
    share: float
    logins: int
    by_dbms: dict[str, int]


def asn_table(db_path: Source, top: int = 10) -> list[AsnRow]:
    """Table 6: top ASNs by IP count, with login split."""
    with borrow_store(db_path) as store:
        [(total_ips,)] = store.rows(
            "SELECT COUNT(DISTINCT src_ip) FROM events")
        ip_counts = {}
        for asn, as_name, count in store.rows(
                "SELECT asn, as_name, COUNT(DISTINCT src_ip) FROM events "
                "WHERE asn IS NOT NULL GROUP BY asn"):
            ip_counts[asn] = (as_name, count)
        login_counts: dict[int, dict[str, int]] = {}
        for asn, dbms, count in store.rows(
                "SELECT asn, dbms, COUNT(*) FROM events "
                "WHERE event_type = 'login_attempt' AND asn IS NOT NULL "
                "GROUP BY asn, dbms"):
            login_counts.setdefault(asn, {})[dbms] = count
    rows = []
    for asn, (as_name, count) in ip_counts.items():
        by_dbms = login_counts.get(asn, {})
        rows.append(AsnRow(asn, as_name, count,
                           count / total_ips if total_ips else 0.0,
                           sum(by_dbms.values()), by_dbms))
    rows.sort(key=lambda row: -row.ip_count)
    return rows[:top]


# -- Table 7: AS types of login sources ------------------------------------------


def as_type_logins(db_path: Source) -> dict[str, int]:
    """Table 7: distinct IPs attempting logins, by AS type."""
    with borrow_store(db_path) as store:
        return dict(store.rows(
            "SELECT as_type, COUNT(DISTINCT src_ip) FROM events "
            "WHERE event_type = 'login_attempt' "
            "GROUP BY as_type ORDER BY 2 DESC"))


# -- Section 5: single- vs multi-service hosts -------------------------------------


@dataclass(frozen=True)
class SingleVsMulti:
    """The Section 5 control-group comparison."""

    single_ips: int
    multi_ips: int
    overlap: int
    brute_single_only: int
    brute_multi_only: int


def single_vs_multi(db_path: Source) -> SingleVsMulti:
    """Compare the single-service control group with the multi-service
    deployment."""
    with borrow_store(db_path) as store:
        single = {row[0] for row in store.rows(
            "SELECT DISTINCT src_ip FROM events WHERE config = 'single'")}
        multi = {row[0] for row in store.rows(
            "SELECT DISTINCT src_ip FROM events WHERE config = 'multi'")}
        brute_single = {row[0] for row in store.rows(
            "SELECT DISTINCT src_ip FROM events WHERE config = 'single' "
            "AND event_type = 'login_attempt'")}
        brute_multi = {row[0] for row in store.rows(
            "SELECT DISTINCT src_ip FROM events WHERE config = 'multi' "
            "AND event_type = 'login_attempt'")}
    overlap = single & multi
    return SingleVsMulti(
        single_ips=len(single),
        multi_ips=len(multi),
        overlap=len(overlap),
        brute_single_only=len((brute_single - brute_multi) & overlap),
        brute_multi_only=len((brute_multi - brute_single) & overlap),
    )


# -- Table 10: exploiting countries ---------------------------------------------------


def exploit_countries(profiles: "dict[tuple[str, str], IpProfile] | AnalysisStore",
                      top: int = 10) -> list[tuple[str, int,
                                                   dict[str, int]]]:
    """Table 10: top countries by exploiting IPs, split per DBMS."""
    if isinstance(profiles, AnalysisStore):
        classifications = profiles.classifications()
        profiles = profiles.profiles()
    else:
        classifications = classify_ips(profiles)
    per_country: dict[str, dict[str, set[str]]] = {}
    for key, classification in classifications.items():
        if BehaviorClass.EXPLOITING not in classification.classes:
            continue
        profile = profiles[key]
        country = per_country.setdefault(profile.country, {})
        country.setdefault(profile.dbms, set()).add(profile.src_ip)
    rows = []
    for country, by_dbms in per_country.items():
        unique = {ip for ips in by_dbms.values() for ip in ips}
        rows.append((country, len(unique),
                     {dbms: len(ips) for dbms, ips in by_dbms.items()}))
    rows.sort(key=lambda row: -row[1])
    return rows[:top]


# -- Table 11: AS type x behavior class ---------------------------------------------


def as_type_behavior(profiles: "dict[tuple[str, str], IpProfile] | AnalysisStore",
                     ) -> dict[str, dict[BehaviorClass, int]]:
    """Table 11: unique IPs per (AS type, primary behavior class)."""
    if isinstance(profiles, AnalysisStore):
        classifications = profiles.classifications()
        profiles = profiles.profiles()
    else:
        classifications = classify_ips(profiles)
    severity = {BehaviorClass.SCANNING: 0, BehaviorClass.SCOUTING: 1,
                BehaviorClass.EXPLOITING: 2}
    per_ip: dict[str, tuple[str, BehaviorClass]] = {}
    for key, classification in classifications.items():
        profile = profiles[key]
        primary = classification.primary
        current = per_ip.get(profile.src_ip)
        if current is None or severity[primary] > severity[current[1]]:
            per_ip[profile.src_ip] = (profile.as_type, primary)
    table: dict[str, dict[BehaviorClass, int]] = {}
    for as_type, cls in per_ip.values():
        row = table.setdefault(as_type,
                               {c: 0 for c in BehaviorClass})
        row[cls] += 1
    return table


# -- Section 6: configuration effects ------------------------------------------------


@dataclass(frozen=True)
class ConfigEffect:
    """The Section 6 configuration ablation."""

    psql_open_logins: int
    psql_restricted_logins: int
    redis_default_type_cmds: int
    redis_fake_data_type_cmds: int


def config_effect(db_path: Source) -> ConfigEffect:
    """Compare honeypot configurations: login volume on open vs
    restricted PostgreSQL, TYPE probing on default vs fake-data Redis."""
    with borrow_store(db_path) as store:
        def count(sql: str, *params: str) -> int:
            [(value,)] = store.rows(sql, params)
            return value

        return ConfigEffect(
            psql_open_logins=count(
                "SELECT COUNT(*) FROM events WHERE dbms = 'postgresql' "
                "AND config = 'default' AND event_type = 'login_attempt'"),
            psql_restricted_logins=count(
                "SELECT COUNT(*) FROM events WHERE dbms = 'postgresql' "
                "AND config = 'login_disabled' "
                "AND event_type = 'login_attempt'"),
            redis_default_type_cmds=count(
                "SELECT COUNT(*) FROM events WHERE dbms = 'redis' "
                "AND config = 'default' AND action = 'TYPE'"),
            redis_fake_data_type_cmds=count(
                "SELECT COUNT(*) FROM events WHERE dbms = 'redis' "
                "AND config = 'fake_data' AND action = 'TYPE'"),
        )


# -- Table 8: classification + clustering --------------------------------------------


@dataclass(frozen=True)
class ClassificationRow:
    """One row of Table 8."""

    dbms: str
    total_ips: int
    scanning: int
    scouting: int
    exploiting: int
    clusters: int


def cluster_dbms(profiles: "dict[tuple[str, str], IpProfile] | AnalysisStore",
                 dbms: str, *, distance_threshold: float = 0.18,
                 ) -> dict[tuple[str, str], int]:
    """Cluster one DBMS's interactive IPs by their TF action vectors.

    Returns (ip, dbms) -> cluster label.  Pure scanners (no actions)
    are excluded, as in the paper.  With an
    :class:`~repro.core.store.AnalysisStore`, the TF matrix and the
    linkage come from the store's digest-keyed cache.
    """
    if isinstance(profiles, AnalysisStore):
        return profiles.cluster_labels(
            dbms, distance_threshold=distance_threshold)
    sequences = action_sequences(profiles, dbms=dbms)
    if not sequences:
        return {}
    ips = sorted(sequences)
    documents = [sequences[ip] for ip in ips]
    matrix = TfVectorizer().fit_transform(documents)
    model = AgglomerativeClustering(
        distance_threshold=distance_threshold).fit(matrix)
    return {(ip, dbms): int(label)
            for ip, label in zip(ips, model.labels_)}


def classification_table(
        profiles: "dict[tuple[str, str], IpProfile] | AnalysisStore",
        *, distance_threshold: float = 0.18,
        ) -> list[ClassificationRow]:
    """Table 8: per-DBMS class counts and cluster counts."""
    source = profiles
    if isinstance(profiles, AnalysisStore):
        classifications = profiles.classifications()
        profiles = profiles.profiles()
    else:
        classifications = classify_ips(profiles)
    dbms_names = sorted({dbms for _ip, dbms in profiles})
    rows = []
    for dbms in dbms_names:
        counts = primary_counts(classifications, dbms)
        total = sum(counts.values())
        labels = cluster_dbms(source, dbms,
                              distance_threshold=distance_threshold)
        clusters = len(set(labels.values()))
        rows.append(ClassificationRow(
            dbms=dbms, total_ips=total,
            scanning=counts[BehaviorClass.SCANNING],
            scouting=counts[BehaviorClass.SCOUTING],
            exploiting=counts[BehaviorClass.EXPLOITING],
            clusters=clusters))
    return rows


# -- Section 6.1: institutional scanner deep probing --------------------------------


@dataclass(frozen=True)
class InstitutionalProbing:
    """What institutional scanners did on one DBMS (Section 6.1)."""

    dbms: str
    scanners: int
    institutional_scanners: int
    institutional_scouting: int
    deep_probing_ips: int
    deep_actions: dict[str, int]


#: Actions that reveal database *content* rather than mere liveness --
#: the privacy concern the paper raises about device search engines.
_DEEP_ACTIONS: dict[str, frozenset[str]] = {
    "mongodb": frozenset({"listDatabases", "listCollections", "find"}),
    "redis": frozenset({"KEYS", "SCAN", "HGETALL", "LRANGE"}),
    "elasticsearch": frozenset({"GET /_search", "GET /_mapping",
                                "GET /_aliases", "GET /_cat/indices",
                                "GET /_all/_search",
                                "GET /<index>/_search"}),
    "postgresql": frozenset({"SELECT USENAME", "SELECT DATNAME",
                             "SHOW DATA_DIRECTORY"}),
}


def institutional_probing(profiles: "dict[tuple[str, str], IpProfile] | AnalysisStore",
                          ) -> list[InstitutionalProbing]:
    """Per-DBMS institutional scanner counts and deep-probing activity."""
    if isinstance(profiles, AnalysisStore):
        classifications = profiles.classifications()
        profiles = profiles.profiles()
    else:
        classifications = classify_ips(profiles)
    rows = []
    for dbms in sorted({key[1] for key in profiles}):
        deep_actions = _DEEP_ACTIONS.get(dbms, frozenset())
        scanners = institutional = inst_scouting = deep_ips = 0
        action_counts: dict[str, int] = {}
        for key, profile in profiles.items():
            if key[1] != dbms or not profile.institutional:
                continue
            primary = classifications[key].primary
            if primary is BehaviorClass.SCANNING:
                scanners += 1
                institutional += 1
            else:
                institutional += 1
                inst_scouting += 1
            hits = [action for action in profile.actions
                    if action in deep_actions]
            if hits:
                deep_ips += 1
                for action in hits:
                    action_counts[action] = action_counts.get(
                        action, 0) + 1
        total_scanners = sum(
            1 for key, c in classifications.items()
            if key[1] == dbms and c.primary is BehaviorClass.SCANNING)
        rows.append(InstitutionalProbing(
            dbms=dbms, scanners=total_scanners,
            institutional_scanners=scanners,
            institutional_scouting=inst_scouting,
            deep_probing_ips=deep_ips, deep_actions=action_counts))
    return rows


# -- formatting helpers ----------------------------------------------------------------


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = ["  ".join(header.ljust(widths[index])
                       for index, header in enumerate(headers))]
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(widths[index])
                               for index, value in enumerate(row)))
    return "\n".join(lines)


def extrapolate(count: int, volume_scale: float) -> int:
    """Scale a simulated volume back to paper magnitude."""
    if not 0 < volume_scale <= 1:
        raise ValueError("volume_scale must be in (0, 1]")
    return round(count / volume_scale)
