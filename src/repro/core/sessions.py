"""Session reconstruction from the event stream.

The honeypot literature the paper compares against (Table 1) reports in
*sessions* -- one TCP connection from connect to disconnect.  This
module rebuilds sessions from a converted database: events sharing
(source IP, source port, honeypot) between a ``connect`` and its
``disconnect`` form one session.

Used to compare deployment scale against related work and to compute
per-session interaction depth (commands per session, intrusive-session
share -- the metric Munteanu et al. report as 30.3%).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.pipeline.convert import open_database

#: Event types that make a session "intrusive" (beyond connect/scan).
_INTRUSIVE = frozenset({"login_attempt", "command", "query",
                        "http_request", "malformed"})


@dataclass
class Session:
    """One reconstructed honeypot session."""

    src_ip: str
    src_port: int
    honeypot_id: str
    dbms: str
    start_ts: float
    end_ts: float = 0.0
    events: int = 0
    interactions: int = 0

    @property
    def intrusive(self) -> bool:
        """Whether the client did anything beyond connecting."""
        return self.interactions > 0

    @property
    def duration(self) -> float:
        return max(0.0, self.end_ts - self.start_ts)


@dataclass(frozen=True)
class SessionStats:
    """Aggregate session statistics for one database."""

    total_sessions: int
    intrusive_sessions: int
    unique_ips: int
    mean_interactions_per_session: float
    sessions_per_ip: float

    @property
    def intrusive_fraction(self) -> float:
        if self.total_sessions == 0:
            return 0.0
        return self.intrusive_sessions / self.total_sessions


def reconstruct_sessions(db_path: str | Path, *,
                         dbms: str | None = None) -> list[Session]:
    """Rebuild all sessions of a converted database, in start order."""
    connection = open_database(db_path)
    try:
        clauses = ""
        params: list = []
        if dbms is not None:
            clauses = " WHERE dbms = ?"
            params.append(dbms)
        cursor = connection.execute(
            "SELECT src_ip, src_port, honeypot_id, dbms, event_type, "
            f"timestamp FROM events{clauses} ORDER BY timestamp, id",
            params)
        open_sessions: dict[tuple[str, int, str], Session] = {}
        finished: list[Session] = []
        for src_ip, src_port, honeypot_id, row_dbms, event_type, \
                timestamp in cursor:
            key = (src_ip, src_port, honeypot_id)
            session = open_sessions.get(key)
            if event_type == "connect" or session is None:
                if session is not None:
                    finished.append(session)
                session = Session(src_ip=src_ip, src_port=src_port,
                                  honeypot_id=honeypot_id,
                                  dbms=row_dbms, start_ts=timestamp)
                open_sessions[key] = session
            session.events += 1
            session.end_ts = timestamp
            if event_type in _INTRUSIVE:
                session.interactions += 1
            if event_type == "disconnect":
                finished.append(open_sessions.pop(key))
        finished.extend(open_sessions.values())
        finished.sort(key=lambda session: session.start_ts)
        return finished
    finally:
        connection.close()


def session_stats(sessions: list[Session]) -> SessionStats:
    """Aggregate a session list into summary statistics."""
    if not sessions:
        return SessionStats(0, 0, 0, 0.0, 0.0)
    intrusive = sum(1 for session in sessions if session.intrusive)
    ips = {session.src_ip for session in sessions}
    interactions = sum(session.interactions for session in sessions)
    return SessionStats(
        total_sessions=len(sessions),
        intrusive_sessions=intrusive,
        unique_ips=len(ips),
        mean_interactions_per_session=interactions / len(sessions),
        sessions_per_ip=len(sessions) / len(ips),
    )
