"""Temporal traffic series (Figures 2 and 6-9).

Hourly client counts and the cumulative number of previously unseen
source IPs over the deployment window, computed from the columnar event
form served by :class:`repro.core.store.AnalysisStore` -- vectorized
over the timestamp array and the dictionary-encoded source-IP column
instead of a Python loop over raw rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import AnalysisStore, ColumnarEvents

_HOUR = 3600.0


@dataclass(frozen=True)
class TemporalSeries:
    """Hourly activity series for one traffic slice."""

    label: str
    #: clients_per_hour[h] = distinct IPs connecting in hour h.
    clients_per_hour: tuple[int, ...]
    #: cumulative_new[h] = unique IPs seen in hours 0..h.
    cumulative_new: tuple[int, ...]

    @property
    def hours(self) -> int:
        return len(self.clients_per_hour)

    @property
    def total_unique(self) -> int:
        return self.cumulative_new[-1] if self.cumulative_new else 0

    def mean_clients_per_hour(self) -> float:
        """Average distinct clients per hour (the paper: ~50)."""
        if not self.clients_per_hour:
            return 0.0
        return sum(self.clients_per_hour) / len(self.clients_per_hour)

    def mean_new_per_hour(self) -> float:
        """Average previously-unseen clients per hour (the paper: ~7)."""
        if not self.cumulative_new:
            return 0.0
        return self.total_unique / len(self.cumulative_new)


def series_from_columns(columns: "ColumnarEvents",
                        label: str) -> TemporalSeries:
    """Compute one hourly series from a columnar event slice."""
    if not columns.n:
        return TemporalSeries(label, (), ())
    timestamps = columns.timestamps  # sorted ascending
    start = float(timestamps[0])
    hours = int((float(timestamps[-1]) - start) // _HOUR) + 1
    hour = ((timestamps - start) // _HOUR).astype(np.int64)
    codes = columns.src_ip.codes.astype(np.int64)
    span = int(codes.max()) + 1
    # Distinct IPs per hour: unique (hour, ip) pairs, bucketed by hour.
    pairs = np.unique(hour * span + codes)
    clients_per_hour = np.bincount(pairs // span, minlength=hours)
    # Previously-unseen IPs per hour: each IP counts once, in the hour
    # of its first occurrence (np.unique returns first-occurrence
    # indices for the stream order because timestamps are sorted).
    _, first_seen = np.unique(codes, return_index=True)
    new_counts = np.bincount(hour[first_seen], minlength=hours)
    return TemporalSeries(
        label,
        tuple(int(count) for count in clients_per_hour),
        tuple(int(count) for count in np.cumsum(new_counts)))


def hourly_series(source: "str | Path | AnalysisStore", *,
                  interaction: str | None = None,
                  dbms: str | None = None,
                  label: str | None = None) -> TemporalSeries:
    """Compute the Figure 2 series for one traffic slice.

    ``source`` is a converted database path or an
    :class:`~repro.core.store.AnalysisStore`; filters are pushed down
    into the scan (or served from the store's columnar load).
    """
    from repro.core.store import borrow_store

    with borrow_store(source) as store:
        return store.hourly_series(interaction=interaction, dbms=dbms,
                                   label=label)


def per_dbms_series(source: "str | Path | AnalysisStore", *,
                    interaction: str = "low",
                    ) -> dict[str, TemporalSeries]:
    """Figures 6-9: one series per DBMS."""
    from repro.core.store import borrow_store

    with borrow_store(source) as store:
        return store.per_dbms_series(interaction=interaction)
