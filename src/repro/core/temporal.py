"""Temporal traffic series (Figures 2 and 6-9).

Hourly client counts and the cumulative number of previously unseen
source IPs over the deployment window, computed straight from the event
timestamps of a converted database.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.pipeline.convert import open_database

_HOUR = 3600.0


@dataclass(frozen=True)
class TemporalSeries:
    """Hourly activity series for one traffic slice."""

    label: str
    #: clients_per_hour[h] = distinct IPs connecting in hour h.
    clients_per_hour: tuple[int, ...]
    #: cumulative_new[h] = unique IPs seen in hours 0..h.
    cumulative_new: tuple[int, ...]

    @property
    def hours(self) -> int:
        return len(self.clients_per_hour)

    @property
    def total_unique(self) -> int:
        return self.cumulative_new[-1] if self.cumulative_new else 0

    def mean_clients_per_hour(self) -> float:
        """Average distinct clients per hour (the paper: ~50)."""
        if not self.clients_per_hour:
            return 0.0
        return sum(self.clients_per_hour) / len(self.clients_per_hour)

    def mean_new_per_hour(self) -> float:
        """Average previously-unseen clients per hour (the paper: ~7)."""
        if not self.cumulative_new:
            return 0.0
        return self.total_unique / len(self.cumulative_new)


def hourly_series(db_path: str | Path, *, interaction: str | None = None,
                  dbms: str | None = None,
                  label: str | None = None) -> TemporalSeries:
    """Compute the Figure 2 series for one traffic slice."""
    connection = open_database(db_path)
    try:
        clauses, params = [], []
        if interaction is not None:
            clauses.append("interaction = ?")
            params.append(interaction)
        if dbms is not None:
            clauses.append("dbms = ?")
            params.append(dbms)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        row = connection.execute(
            f"SELECT MIN(timestamp), MAX(timestamp) FROM events{where}",
            params).fetchone()
        if row[0] is None:
            return TemporalSeries(label or "empty", (), ())
        start, end = row
        hours = int((end - start) // _HOUR) + 1
        hourly_ips: list[set[str]] = [set() for _ in range(hours)]
        seen: set[str] = set()
        cumulative: list[int] = [0] * hours
        cursor = connection.execute(
            "SELECT timestamp, src_ip FROM events"
            f"{where} ORDER BY timestamp", params)
        new_counts = [0] * hours
        for timestamp, src_ip in cursor:
            hour = int((timestamp - start) // _HOUR)
            hourly_ips[hour].add(src_ip)
            if src_ip not in seen:
                seen.add(src_ip)
                new_counts[hour] += 1
        running = 0
        for hour in range(hours):
            running += new_counts[hour]
            cumulative[hour] = running
        return TemporalSeries(
            label or (dbms or "all"),
            tuple(len(ips) for ips in hourly_ips),
            tuple(cumulative))
    finally:
        connection.close()


def per_dbms_series(db_path: str | Path, *, interaction: str = "low",
                    ) -> dict[str, TemporalSeries]:
    """Figures 6-9: one series per DBMS."""
    connection = open_database(db_path)
    try:
        names = [row[0] for row in connection.execute(
            "SELECT DISTINCT dbms FROM events WHERE interaction = ? "
            "ORDER BY dbms", (interaction,))]
    finally:
        connection.close()
    return {name: hourly_series(db_path, interaction=interaction,
                                dbms=name) for name in names}
