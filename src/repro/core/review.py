"""Manual-review emulation for the clustering (Section 6.1).

The paper manually reviewed the generated clusters and reassigned a
small number of source IPs whose behavior class disagreed with their
cluster (e.g. scanning IPs grouped with exploiting IPs through shared
action-sequence fragments): Redis 25, Elasticsearch 11, MongoDB 5,
PostgreSQL 53 reassignments.

:func:`review_clusters` automates the same check: within each cluster,
the dominant behavior class is established, and members of a *different*
class are split out into fresh clusters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.classification import (BehaviorClass, Classification,
                                       classify_ips)
from repro.core.loading import IpProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import AnalysisStore


@dataclass(frozen=True)
class ReviewResult:
    """Outcome of one review pass over one DBMS's clusters."""

    dbms: str
    labels: dict[tuple[str, str], int]
    reassigned: tuple[str, ...]

    @property
    def reassigned_count(self) -> int:
        return len(self.reassigned)

    @property
    def cluster_count(self) -> int:
        return len(set(self.labels.values()))


def review_clusters(profiles: dict[tuple[str, str], IpProfile],
                    labels: dict[tuple[str, str], int],
                    dbms: str, *,
                    classifications: dict[tuple[str, str],
                                          Classification] | None = None,
                    ) -> ReviewResult:
    """Split class-inconsistent members out of their clusters.

    Parameters
    ----------
    profiles:
        Per-(IP, DBMS) profiles.
    labels:
        Cluster labels from :func:`repro.core.reports.cluster_dbms`.
    dbms:
        The honeypot family under review.
    classifications:
        Precomputed classifications of ``profiles`` (e.g. from
        :meth:`repro.core.store.AnalysisStore.classifications`);
        computed here when omitted.
    """
    if classifications is None:
        classifications = classify_ips(profiles)
    members: dict[int, list[tuple[str, str]]] = {}
    for key, label in labels.items():
        if key[1] == dbms:
            members.setdefault(label, []).append(key)

    new_labels = {key: label for key, label in labels.items()
                  if key[1] == dbms}
    next_label = max(new_labels.values(), default=-1) + 1
    reassigned: list[str] = []
    # Group outliers by (source cluster, class) so a batch of identical
    # misfits lands in one fresh cluster, as a human reviewer would do.
    splits: dict[tuple[int, BehaviorClass], int] = {}
    for label, keys in sorted(members.items()):
        majority = _majority_class(keys, classifications)
        for key in keys:
            primary = classifications[key].primary
            if primary is majority:
                continue
            split_key = (label, primary)
            if split_key not in splits:
                splits[split_key] = next_label
                next_label += 1
            new_labels[key] = splits[split_key]
            reassigned.append(key[0])
    return ReviewResult(dbms=dbms, labels=new_labels,
                        reassigned=tuple(sorted(reassigned)))


def review_dbms(store: "AnalysisStore", dbms: str, *,
                distance_threshold: float = 0.18) -> ReviewResult:
    """Cluster one DBMS through ``store`` and run the review pass.

    Profiles, the TF matrix, and the linkage matrix are all served from
    the store's cache, so repeated reviews cost no database scans.
    """
    labels = store.cluster_labels(dbms,
                                  distance_threshold=distance_threshold)
    return review_clusters(store.profiles(), labels, dbms,
                           classifications=store.classifications())


def _majority_class(keys: list[tuple[str, str]],
                    classifications: dict[tuple[str, str],
                                          Classification],
                    ) -> BehaviorClass:
    counts = Counter(classifications[key].primary for key in keys)
    # Ties break toward the more severe class, mirroring the paper's
    # conservative review (an exploit cluster keeps its identity).
    severity = {BehaviorClass.SCANNING: 0, BehaviorClass.SCOUTING: 1,
                BehaviorClass.EXPLOITING: 2}
    best = max(counts.items(),
               key=lambda item: (item[1], severity[item[0]]))
    return best[0]
