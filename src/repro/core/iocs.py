"""Indicator-of-compromise extraction (the Section 6.3 methodology).

The paper's case studies pivot on IOCs recovered from captured
payloads: loader URLs (``http://<IP>:<PORT>/ff.sh``), Bitcoin addresses
and contact emails from ransom notes, SSH keys from P2PInfect, and
dropped-file paths.  This module extracts the same indicator classes
from per-IP raw payloads, so campaigns can be pivoted on shared
infrastructure -- e.g. all 35 P2PInfect IPs share one loader endpoint.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.loading import IpProfile

_URL = re.compile(r"\bhttps?://([0-9]{1,3}(?:\.[0-9]{1,3}){3})"
                  r"(?::([0-9]{2,5}))?(/[^\s'\"|<>]*)?")
_DEV_TCP = re.compile(r"/dev/tcp/([0-9]{1,3}(?:\.[0-9]{1,3}){3})/"
                      r"([0-9]{2,5})")
_BTC = re.compile(r"\b(bc1[a-z0-9]{8,64}|[13][a-km-zA-HJ-NP-Z1-9]"
                  r"{25,34})\b")
_EMAIL = re.compile(r"\b[\w.+-]+@[\w-]+(?:\.[\w-]+)+\b")
_SSH_KEY = re.compile(r"\bssh-(?:rsa|ed25519)\s+[A-Za-z0-9+/=]{16,}")
_DROPPED_FILE = re.compile(r"(/tmp/[\w.\-]+|/var/spool/cron[\w./\-]*"
                           r"|/root/\.ssh/[\w.\-]+|/etc/cron\.d/"
                           r"[\w.\-]+)")
_BTC_AMOUNT = re.compile(r"\b([0-9]+\.[0-9]+)\s*BTC\b", re.I)


@dataclass(frozen=True)
class IocSet:
    """Indicators recovered from one profile (or one campaign)."""

    loader_endpoints: frozenset[str] = frozenset()
    urls: frozenset[str] = frozenset()
    btc_addresses: frozenset[str] = frozenset()
    btc_amounts: frozenset[str] = frozenset()
    emails: frozenset[str] = frozenset()
    ssh_keys: frozenset[str] = frozenset()
    dropped_files: frozenset[str] = frozenset()

    def __bool__(self) -> bool:
        return any((self.loader_endpoints, self.urls,
                    self.btc_addresses, self.emails, self.ssh_keys,
                    self.dropped_files))

    def merge(self, other: "IocSet") -> "IocSet":
        """Union of two indicator sets."""
        return IocSet(
            loader_endpoints=self.loader_endpoints
            | other.loader_endpoints,
            urls=self.urls | other.urls,
            btc_addresses=self.btc_addresses | other.btc_addresses,
            btc_amounts=self.btc_amounts | other.btc_amounts,
            emails=self.emails | other.emails,
            ssh_keys=self.ssh_keys | other.ssh_keys,
            dropped_files=self.dropped_files | other.dropped_files)


_BASE64_BLOB = re.compile(r"\b[A-Za-z0-9+/]{40,}={0,2}\b")


def _decode_base64_blobs(texts: list[str]) -> list[str]:
    """Decode embedded base64 payloads (the paper decodes Kinsing's
    ``COPY FROM PROGRAM 'echo <b64>|base64 -d|bash'`` stage this way)."""
    import base64

    decoded = []
    for text in texts:
        for blob in _BASE64_BLOB.findall(text):
            try:
                raw = base64.b64decode(blob, validate=True)
            except (ValueError, binascii_error):
                continue
            candidate = raw.decode("utf-8", "replace")
            if sum(char.isprintable() or char in "\n\t"
                   for char in candidate) > 0.9 * max(1, len(candidate)):
                decoded.append(candidate)
    return decoded


try:
    from binascii import Error as binascii_error
except ImportError:  # pragma: no cover
    binascii_error = ValueError


def extract_iocs(texts: list[str]) -> IocSet:
    """Extract all indicator classes from raw payload texts.

    Embedded base64 payloads are decoded and searched too.
    """
    texts = list(texts) + _decode_base64_blobs(texts)
    loaders: set[str] = set()
    urls: set[str] = set()
    for text in texts:
        for match in _URL.finditer(text):
            host, port, path = match.groups()
            endpoint = host + (f":{port}" if port else "")
            loaders.add(endpoint)
            urls.add(match.group(0))
        for match in _DEV_TCP.finditer(text):
            loaders.add(f"{match.group(1)}:{match.group(2)}")
    combined = "\n".join(texts)
    return IocSet(
        loader_endpoints=frozenset(loaders),
        urls=frozenset(urls),
        btc_addresses=frozenset(_BTC.findall(combined)),
        btc_amounts=frozenset(_BTC_AMOUNT.findall(combined)),
        emails=frozenset(_EMAIL.findall(combined)),
        ssh_keys=frozenset(match.group(0)
                           for match in _SSH_KEY.finditer(combined)),
        dropped_files=frozenset(_DROPPED_FILE.findall(combined)),
    )


def profile_iocs(profile: IpProfile) -> IocSet:
    """Extract IOCs from one per-IP profile."""
    return extract_iocs(profile.raws)


@dataclass
class InfrastructurePivot:
    """Groups source IPs by shared loader infrastructure."""

    #: loader endpoint -> source IPs that referenced it.
    by_endpoint: dict[str, set[str]] = field(default_factory=dict)

    def add(self, src_ip: str, iocs: IocSet) -> None:
        for endpoint in iocs.loader_endpoints:
            self.by_endpoint.setdefault(endpoint, set()).add(src_ip)

    def shared_endpoints(self, minimum: int = 2) -> dict[str, set[str]]:
        """Endpoints referenced by at least ``minimum`` distinct IPs --
        the campaign-infrastructure signal."""
        return {endpoint: ips
                for endpoint, ips in self.by_endpoint.items()
                if len(ips) >= minimum}


def pivot_infrastructure(profiles: dict[tuple[str, str], IpProfile],
                         ) -> InfrastructurePivot:
    """Build the loader-infrastructure pivot over all profiles."""
    pivot = InfrastructurePivot()
    for (src_ip, _dbms), profile in profiles.items():
        iocs = profile_iocs(profile)
        if iocs.loader_endpoints:
            pivot.add(src_ip, iocs)
    return pivot
