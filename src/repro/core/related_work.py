"""Related-work comparison tables (Tables 1 and 2 of the paper).

Static by nature -- these tables summarize prior literature -- but kept
as structured data so the bench can regenerate and sanity-check them
(e.g. this work is the only live-data DBMS-honeypot study).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HoneypotStudy:
    """One row of Table 1 (quantitative comparison)."""

    work: str
    honeypot: str
    instances: int
    collection: str
    traffic: str
    attacks: str
    period: str
    duration_days: int


TABLE1_STUDIES: tuple[HoneypotStudy, ...] = (
    HoneypotStudy("Pa et al.", "IoTPOT (Telnet: IoT)", 87, "Live",
                  "180,581 host IPs", "79,935 exploitative IPs",
                  "Apr'15-Jun'15", 81),
    HoneypotStudy("Wang et al.", "ThingPot (REST, XMPP: IoT)", 1, "Live",
                  "113,741 requests", "47,297 targeted requests",
                  "Jun'17-Aug'17", 47),
    HoneypotStudy("Dodson et al.", "SecuriOT (ICS protocols)", 120,
                  "Live", "202,467 packets",
                  "9 ICS attacks, 3,919 malicious interactions",
                  "Mar'18-Apr'19", 395),
    HoneypotStudy("Hiesgen et al.", "Spoki (reactive telescope)", 4,
                  "Live", "16,597,830 two-phase scanner events",
                  "4,140,195 events with payload", "Apr'20-Jan'20", 90),
    HoneypotStudy("Munteanu et al.", "SSH/Telnet Honeyfarm", 221, "Live",
                  "402 million sessions", "~122 million intrusive",
                  "Nov'21-Mar'23", 450),
    HoneypotStudy("Wu et al.", "closed/open/web honeypots (IoT)", 28,
                  "Live", "14,693,367 requests", "N/A (ethics focus)",
                  "Mar'23-Mar'24", 365),
    HoneypotStudy("van Liebergen et al.", "MySQL", 5, "Live",
                  "62 attacker hosts", "131 ransom notes, 3 templates",
                  "Jun'24, Sep'24", 40),
    HoneypotStudy("This work",
                  "Qeeqbox, RedisHoneyPot, Sticky Elephant, Elasticpot, "
                  "Mongo-honeypot", 278, "Live",
                  "3,340 low-int IPs, 3,665 med/high IPs",
                  "324 exploitative IPs", "Mar'24-Apr'24", 20),
)


@dataclass(frozen=True)
class DbmsHoneypotStudy:
    """One row of Table 2 (qualitative comparison)."""

    work: str
    year: int
    new_method: bool
    simulated_data: bool
    historical_data: bool
    live_data: bool


TABLE2_STUDIES: tuple[DbmsHoneypotStudy, ...] = (
    DbmsHoneypotStudy("Ma et al.", 2011, True, True, False, False),
    DbmsHoneypotStudy("Wegerer et al.", 2016, True, False, False, False),
    DbmsHoneypotStudy("Hu et al.", 2024, True, False, True, False),
    DbmsHoneypotStudy("This work", 2025, False, False, False, True),
)
