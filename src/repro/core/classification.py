"""Behavioral classification: scanning, scouting, exploiting.

The paper's Section 4.3 taxonomy, implemented as a rule engine over the
per-IP profiles:

* *scanning* -- connected, nothing more;
* *scouting* -- login attempts or read-only information gathering;
* *exploiting* -- state-changing or system-compromising actions.

An exploiting IP is also a scout and a scanner; a scouting IP is also a
scanner (the paper's cumulative-membership convention).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.core.loading import IpProfile


class BehaviorClass(enum.Enum):
    """The three adversarial behavior classes."""

    SCANNING = "scanning"
    SCOUTING = "scouting"
    EXPLOITING = "exploiting"


#: Action tokens that constitute exploitation, per DBMS.  These are the
#: state-changing / system-compromising operations of Section 6.2.
_EXPLOIT_ACTIONS: dict[str, frozenset[str]] = {
    "redis": frozenset({
        "SET", "DEL", "HSET", "FLUSHDB", "FLUSHALL", "CONFIG SET",
        "SLAVEOF", "REPLICAOF", "MODULE LOAD", "SYSTEM.EXEC", "SAVE",
        "BGSAVE", "EVAL",
    }),
    "postgresql": frozenset({
        "COPY FROM PROGRAM", "ALTER USER", "ALTER ROLE", "CREATE USER",
        "CREATE TABLE", "DROP TABLE", "INSERT", "UPDATE", "DELETE",
    }),
    "mongodb": frozenset({
        "insert", "delete", "drop", "dropDatabase",
    }),
    "elasticsearch": frozenset(),
}

#: Raw-payload signatures that constitute exploitation regardless of the
#: action token (e.g. scripted RCE delivered through a read endpoint).
_EXPLOIT_RAW_PATTERNS: tuple[re.Pattern[str], ...] = (
    re.compile(r"Runtime\.getRuntime\(\)\.exec", re.I),
    re.compile(r"package\.loadlib", re.I),
    re.compile(r"io\.popen", re.I),
    re.compile(r"base64\s+-d\s*\|\s*bash", re.I),
)



@dataclass(frozen=True)
class Classification:
    """Classification outcome for one (IP, DBMS) profile."""

    src_ip: str
    dbms: str
    classes: frozenset[BehaviorClass]

    @property
    def primary(self) -> BehaviorClass:
        """The most severe class."""
        if BehaviorClass.EXPLOITING in self.classes:
            return BehaviorClass.EXPLOITING
        if BehaviorClass.SCOUTING in self.classes:
            return BehaviorClass.SCOUTING
        return BehaviorClass.SCANNING


def classify_profile(profile: IpProfile) -> Classification:
    """Classify one per-(IP, DBMS) profile."""
    classes = {BehaviorClass.SCANNING}
    exploit_actions = _EXPLOIT_ACTIONS.get(profile.dbms, frozenset())
    exploiting = any(action in exploit_actions
                     for action in profile.actions)
    if not exploiting:
        exploiting = any(pattern.search(raw)
                         for raw in profile.raws
                         for pattern in _EXPLOIT_RAW_PATTERNS)
    if exploiting:
        classes.add(BehaviorClass.EXPLOITING)
        classes.add(BehaviorClass.SCOUTING)
    elif profile.interacted:
        classes.add(BehaviorClass.SCOUTING)
    return Classification(profile.src_ip, profile.dbms,
                          frozenset(classes))


def classify_ips(profiles: dict[tuple[str, str], IpProfile],
                 ) -> dict[tuple[str, str], Classification]:
    """Classify every profile; keyed like the input."""
    return {key: classify_profile(profile)
            for key, profile in profiles.items()}


def class_counts(classifications: dict[tuple[str, str], Classification],
                 dbms: str) -> dict[BehaviorClass, int]:
    """Cumulative per-class IP counts for one DBMS (Table 8 convention:
    scouting membership implies scanning, exploiting implies both)."""
    counts = {cls: 0 for cls in BehaviorClass}
    for (ip, profile_dbms), classification in classifications.items():
        if profile_dbms != dbms:
            continue
        for cls in classification.classes:
            counts[cls] += 1
    return counts


def primary_counts(classifications: dict[tuple[str, str], Classification],
                   dbms: str) -> dict[BehaviorClass, int]:
    """Exclusive per-class IP counts (each IP counted once, by its most
    severe class) -- the convention of Table 8's percentage columns."""
    counts = {cls: 0 for cls in BehaviorClass}
    for (ip, profile_dbms), classification in classifications.items():
        if profile_dbms != dbms:
            continue
        counts[classification.primary] += 1
    return counts
