"""MongoDB client (OP_MSG / legacy OP_QUERY)."""

from __future__ import annotations

from repro.clients.wire import Wire, WireError
from repro.protocols import mongo_wire as wire_codec
from repro.protocols.errors import ProtocolError


class MongoClient:
    """Minimal MongoDB driver."""

    def __init__(self, wire: Wire):
        self._wire = wire
        self._reader = wire_codec.MessageReader()
        self._next_request_id = 1

    def connect(self) -> None:
        """Open the connection."""
        self._wire.connect()

    def is_master_legacy(self) -> dict:
        """Probe with the legacy OP_QUERY ``isMaster`` handshake.

        This is what mass scanners send, predating OP_MSG.
        """
        message = wire_codec.build_query(
            self._request_id(), "admin.$cmd", {"isMaster": 1})
        replies = self._feed(self._wire.send(message))
        for reply in replies:
            if isinstance(reply, wire_codec.ReplyMessage):
                if not reply.documents:
                    raise WireError("empty OP_REPLY")
                return reply.documents[0]
        raise WireError("no OP_REPLY to legacy isMaster")

    def command(self, database: str, command: dict) -> dict:
        """Run one command via OP_MSG and return the reply document."""
        body = dict(command)
        body["$db"] = database
        message = wire_codec.build_msg(self._request_id(), body)
        replies = self._feed(self._wire.send(message))
        for reply in replies:
            if isinstance(reply, wire_codec.MsgMessage):
                return reply.body
        raise WireError(f"no OP_MSG reply to {next(iter(command))!r}")

    def find_all(self, database: str, collection: str, *,
                 batch: int = 0) -> list[dict]:
        """Fetch documents of one collection."""
        reply = self.command(database, {"find": collection, "limit": batch})
        cursor = reply.get("cursor") or {}
        return list(cursor.get("firstBatch") or [])

    def list_databases(self) -> list[str]:
        """Names of all databases."""
        reply = self.command("admin", {"listDatabases": 1})
        return [entry["name"] for entry in reply.get("databases", [])]

    def list_collections(self, database: str) -> list[str]:
        """Collection names of one database."""
        reply = self.command(database, {"listCollections": 1})
        cursor = reply.get("cursor") or {}
        return [entry["name"] for entry in cursor.get("firstBatch") or []]

    def close(self) -> None:
        """Close the connection."""
        self._wire.close()

    def _request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    def _feed(self, data: bytes) -> list[object]:
        try:
            return self._reader.feed(data)
        except ProtocolError as exc:
            raise WireError(f"malformed server data: {exc}") from exc
