"""MySQL client (login phase).

Cooperates with the server's auth-plugin negotiation, including the
switch to ``mysql_clear_password`` that honeypots request -- real
brute-force tools do the same, which is why the paper's low-interaction
tier sees plaintext credentials.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clients.wire import Wire, WireError
from repro.protocols import mysql
from repro.protocols.errors import ProtocolError


@dataclass(frozen=True)
class LoginResult:
    """Outcome of one login attempt."""

    success: bool
    error_code: int | None = None
    error_message: str | None = None


class MySQLClient:
    """Minimal MySQL client: handshake + authenticate."""

    def __init__(self, wire: Wire):
        self._wire = wire
        self._reader = mysql.PacketReader()
        self.server_version: str | None = None

    def connect(self) -> str:
        """Open the connection and read the server handshake.

        Returns the advertised server version.
        """
        greeting = self._wire.connect()
        packets = self._feed(greeting)
        if not packets:
            raise WireError("no MySQL handshake received")
        handshake = mysql.parse_handshake_v10(packets[0][1])
        self.server_version = handshake.server_version
        return handshake.server_version

    def login(self, username: str, password: str,
              database: str | None = None) -> LoginResult:
        """Attempt to authenticate; follows auth-switch requests."""
        # The scramble-based auth response is irrelevant against a
        # honeypot that will switch to cleartext anyway.
        response = mysql.build_handshake_response(
            username, b"\x00" * 20, database=database)
        packets = self._feed(self._wire.send(mysql.frame(response, 1)))
        if not packets:
            raise WireError("no reply to login request")
        payload = packets[0][1]
        if mysql.is_auth_switch(payload):
            plugin, _data = mysql.parse_auth_switch_request(payload)
            if plugin != mysql.CLEAR_PASSWORD_PLUGIN:
                return LoginResult(False, None,
                                   f"unsupported auth plugin {plugin}")
            reply = self._wire.send(mysql.frame(
                mysql.build_clear_password_response(password), 3))
            packets = self._feed(reply)
            if not packets:
                raise WireError("no reply to auth switch response")
            payload = packets[0][1]
        if mysql.is_ok(payload):
            return LoginResult(True)
        if mysql.is_err(payload):
            err = mysql.parse_err(payload)
            return LoginResult(False, err.code, err.message)
        raise WireError(f"unexpected login reply {payload[:16]!r}")

    def close(self) -> None:
        """Close the connection."""
        self._wire.close()

    def _feed(self, data: bytes) -> list[tuple[int, bytes]]:
        try:
            return self._reader.feed(data)
        except ProtocolError as exc:
            raise WireError(f"malformed server data: {exc}") from exc


@dataclass(frozen=True)
class MysqlQueryResult:
    """Outcome of one COM_QUERY."""

    columns: list[str]
    rows: list[list[str | None]]
    ok: bool
    error_message: str | None = None


class MySQLQueryClient(MySQLClient):
    """MySQL client with command-phase support (COM_QUERY / COM_PING).

    Used against interactive MySQL servers (the medium-interaction
    extension honeypot); query results come back as text-protocol rows.
    """

    def query(self, sql: str) -> MysqlQueryResult:
        """Run one statement and collect its result."""
        reply = self._wire.send(mysql.frame(mysql.build_com_query(sql),
                                            0))
        packets = self._feed(reply)
        if not packets:
            raise WireError("no reply to COM_QUERY")
        first = packets[0][1]
        if mysql.is_ok(first):
            return MysqlQueryResult([], [], True)
        if mysql.is_err(first):
            err = mysql.parse_err(first)
            return MysqlQueryResult([], [], False, err.message)
        try:
            columns, rows = mysql.parse_text_resultset(packets)
        except ProtocolError as exc:
            raise WireError(f"malformed result set: {exc}") from exc
        return MysqlQueryResult(columns, rows, True)

    def ping(self) -> bool:
        """COM_PING; returns whether the server answered OK."""
        reply = self._wire.send(mysql.frame(bytes([mysql.COM_PING]), 0))
        packets = self._feed(reply)
        return bool(packets) and mysql.is_ok(packets[0][1])

    def quit(self) -> None:
        """Send COM_QUIT and close."""
        try:
            self._wire.send(mysql.frame(bytes([mysql.COM_QUIT]), 0))
        except WireError:
            pass
        self.close()
