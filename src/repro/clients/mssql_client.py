"""Microsoft SQL Server client (TDS login phase)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.clients.wire import Wire, WireError
from repro.protocols import tds
from repro.protocols.errors import ProtocolError


@dataclass(frozen=True)
class MssqlLoginResult:
    """Outcome of one LOGIN7 attempt."""

    success: bool
    error_number: int | None = None
    error_message: str | None = None


class MSSQLClient:
    """Minimal TDS client: PRELOGIN + LOGIN7."""

    def __init__(self, wire: Wire):
        self._wire = wire
        self._reader = tds.PacketReader()

    def connect(self) -> dict[int, bytes]:
        """Open the connection and negotiate PRELOGIN.

        Returns the server's PRELOGIN option map.
        """
        self._wire.connect()
        reply = self._wire.send(
            tds.frame(tds.PKT_PRELOGIN, tds.build_prelogin()))
        packets = self._feed(reply)
        if not packets:
            raise WireError("no PRELOGIN response")
        return tds.parse_prelogin(packets[0][1])

    def login(self, username: str, password: str, *,
              hostname: str = "WIN-SCANNER",
              app_name: str = "OSQL-32") -> MssqlLoginResult:
        """Attempt to authenticate via LOGIN7."""
        payload = tds.build_login7(username, password, hostname=hostname,
                                   app_name=app_name)
        reply = self._wire.send(tds.frame(tds.PKT_LOGIN7, payload))
        packets = self._feed(reply)
        if not packets:
            raise WireError("no LOGIN7 response")
        try:
            tokens = tds.parse_tokens(packets[0][1])
        except ProtocolError as exc:
            raise WireError(f"malformed token stream: {exc}") from exc
        for token in tokens:
            if token == "LOGINACK":
                return MssqlLoginResult(True)
            if isinstance(token, tds.ErrorToken):
                return MssqlLoginResult(False, token.number, token.message)
        raise WireError("LOGIN7 response carried no outcome token")

    def close(self) -> None:
        """Close the connection."""
        self._wire.close()

    def _feed(self, data: bytes) -> list[tuple[int, bytes]]:
        try:
            return self._reader.feed(data)
        except ProtocolError as exc:
            raise WireError(f"malformed server data: {exc}") from exc
