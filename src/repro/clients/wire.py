"""Client transport abstraction.

A :class:`Wire` is the client's view of a connection: ``connect()``
returns the server greeting, ``send(data)`` returns the server's reply
bytes.  The honeypots in this repository are strictly request/response,
so this synchronous exchange model holds for both transports:

* :class:`repro.honeypots.base.MemoryWire` -- in-process, used by the
  fast experiment driver,
* :class:`TcpWire` -- a real TCP socket, used by the live examples and
  integration tests.
"""

from __future__ import annotations

import socket
from typing import Protocol


class WireError(Exception):
    """Raised when a wire cannot complete an exchange."""


class Wire(Protocol):
    """Structural interface shared by MemoryWire and TcpWire."""

    def connect(self) -> bytes:
        """Open the connection; returns the greeting (may be empty)."""

    def send(self, data: bytes) -> bytes:
        """Send bytes; returns the server's reply bytes."""

    def close(self) -> None:
        """Close the connection."""


class TcpWire:
    """Synchronous TCP client transport.

    ``send`` reads the reply until the socket quiesces: a first blocking
    read bounded by ``timeout``, then short follow-up reads to drain any
    additional frames the server flushed separately.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 2.0,
                 expect_greeting: bool = False):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.expect_greeting = expect_greeting
        self._sock: socket.socket | None = None

    def connect(self) -> bytes:
        """Open the socket; returns the greeting if one is expected."""
        if self._sock is not None:
            raise WireError("wire already connected")
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise WireError(f"connect to {self.host}:{self.port} failed: "
                            f"{exc}") from exc
        if not self.expect_greeting:
            return b""
        return self._drain(initial_timeout=self.timeout)

    def send(self, data: bytes) -> bytes:
        """Send ``data``; returns the server reply (may be empty)."""
        if self._sock is None:
            raise WireError("wire not connected")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise WireError(f"send failed: {exc}") from exc
        return self._drain(initial_timeout=self.timeout)

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _drain(self, *, initial_timeout: float) -> bytes:
        assert self._sock is not None
        chunks = bytearray()
        timeout = initial_timeout
        while True:
            self._sock.settimeout(timeout)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                break
            except OSError:
                break
            if not chunk:
                break
            chunks += chunk
            timeout = 0.05  # drain whatever else is already in flight
        return bytes(chunks)
