"""Redis client (RESP2)."""

from __future__ import annotations

from repro.clients.wire import Wire, WireError
from repro.protocols import resp
from repro.protocols.errors import ProtocolError


class RedisClient:
    """Minimal Redis client.

    :meth:`command` sends one command and returns the decoded reply;
    :meth:`send_raw` ships arbitrary bytes (inline commands, attack
    payloads) and returns the decoded replies.
    """

    def __init__(self, wire: Wire):
        self._wire = wire
        self._parser = resp.RespParser()

    def connect(self) -> None:
        """Open the connection (Redis servers send no greeting)."""
        self._wire.connect()

    def command(self, *args: str | bytes) -> object:
        """Send one command; returns its decoded reply.

        Error replies come back as :class:`repro.protocols.resp.Error`
        values rather than raising -- attack scripts routinely ignore
        errors and push on.
        """
        replies = self.send_raw(resp.encode_command(*args))
        if not replies:
            raise WireError("no reply to command")
        return replies[0]

    def send_inline(self, line: str) -> object:
        """Send one inline (telnet-style) command."""
        replies = self.send_raw(resp.encode_inline_command(line))
        if not replies:
            raise WireError("no reply to inline command")
        return replies[0]

    def send_raw(self, data: bytes) -> list[object]:
        """Send raw bytes; returns all decoded replies."""
        reply = self._wire.send(data)
        try:
            return self._parser.feed(reply)
        except ProtocolError as exc:
            raise WireError(f"malformed server data: {exc}") from exc

    def close(self) -> None:
        """Close the connection."""
        self._wire.close()
