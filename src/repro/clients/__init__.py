"""Attacker-side protocol clients.

The synthetic actor population speaks to the honeypots through these
clients, which implement the *client* half of each wire protocol.  They
run over any :class:`~repro.clients.wire.Wire`: the in-process
``MemoryWire`` during fast simulation, or :class:`~repro.clients.wire.TcpWire`
against real sockets.
"""

from repro.clients.wire import TcpWire, Wire, WireError
from repro.clients.mysql_client import (MySQLClient,
                                        MySQLQueryClient)
from repro.clients.postgres_client import PostgresClient
from repro.clients.redis_client import RedisClient
from repro.clients.mssql_client import MSSQLClient
from repro.clients.elastic_client import ElasticClient
from repro.clients.mongo_client import MongoClient

__all__ = [
    "Wire",
    "TcpWire",
    "WireError",
    "MySQLClient",
    "MySQLQueryClient",
    "PostgresClient",
    "RedisClient",
    "MSSQLClient",
    "ElasticClient",
    "MongoClient",
]
