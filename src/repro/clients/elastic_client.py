"""Elasticsearch REST client (HTTP/1.1)."""

from __future__ import annotations

import json

from repro.clients.wire import Wire, WireError
from repro.protocols import http11
from repro.protocols.errors import ProtocolError


class ElasticClient:
    """Minimal Elasticsearch HTTP client."""

    def __init__(self, wire: Wire, *, host: str = "target"):
        self._wire = wire
        self._host = host

    def connect(self) -> None:
        """Open the connection."""
        self._wire.connect()

    def request(self, method: str, target: str, *,
                body: bytes | str | dict | None = None
                ) -> http11.HttpResponse:
        """Issue one request and parse the response."""
        if isinstance(body, dict):
            body = json.dumps(body).encode()
        elif isinstance(body, str):
            body = body.encode()
        raw = self._wire.send(http11.build_request(
            method, target, body=body or b"", host=self._host))
        try:
            return http11.parse_response(raw)
        except ProtocolError as exc:
            raise WireError(f"malformed HTTP response: {exc}") from exc

    def get(self, target: str) -> http11.HttpResponse:
        """GET a target path."""
        return self.request("GET", target)

    def get_json(self, target: str) -> dict:
        """GET a target path and decode the JSON body."""
        response = self.get(target)
        try:
            return json.loads(response.body or b"{}")
        except json.JSONDecodeError as exc:
            raise WireError(f"non-JSON response body: {exc}") from exc

    def search_with_source(self, source: str) -> http11.HttpResponse:
        """``GET /_search?source=...`` -- the scripted-payload vector."""
        from urllib.parse import quote

        return self.get(f"/_search?source={quote(source)}")

    def close(self) -> None:
        """Close the connection."""
        self._wire.close()
