"""PostgreSQL client (pgwire frontend).

Implements the startup/authentication flow and the simple-query
subprotocol: enough to brute-force logins against Sticky Elephant and to
run the Kinsing-style ``COPY FROM PROGRAM`` sequences once inside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clients.wire import Wire, WireError
from repro.protocols import postgres as pg
from repro.protocols.errors import ProtocolError


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one simple query."""

    columns: list[str]
    rows: list[list[bytes | None]]
    command_tag: str | None
    error: dict[str, str] | None

    @property
    def ok(self) -> bool:
        return self.error is None


class PostgresClient:
    """Minimal pgwire frontend."""

    def __init__(self, wire: Wire):
        self._wire = wire

    def connect(self) -> None:
        """Open the connection (no server greeting in pgwire)."""
        self._wire.connect()

    def login(self, username: str, password: str,
              database: str | None = None) -> bool:
        """Start up and authenticate; returns success."""
        reply = self._wire.send(pg.build_startup_message(username, database))
        messages = self._parse(reply)
        if not messages:
            raise WireError("no reply to startup message")
        first = messages[0]
        if first.type_code == b"E":
            return False
        if first.type_code != b"R":
            raise WireError(f"unexpected startup reply {first.type_code!r}")
        reply = self._wire.send(pg.build_password_message(password))
        for message in self._parse(reply):
            if message.type_code == b"E":
                return False
            if message.type_code == b"R":
                # AuthenticationOk carries subcode 0.
                continue
        return True

    def query(self, sql: str) -> QueryResult:
        """Run one simple query and collect its result."""
        reply = self._wire.send(pg.build_query(sql))
        columns: list[str] = []
        rows: list[list[bytes | None]] = []
        command_tag: str | None = None
        error: dict[str, str] | None = None
        for message in self._parse(reply):
            if message.type_code == b"T":
                columns = _parse_columns(message.payload)
            elif message.type_code == b"D":
                rows.append(pg.parse_data_row(message.payload))
            elif message.type_code == b"C":
                command_tag = message.payload.rstrip(b"\x00").decode(
                    "utf-8", "replace")
            elif message.type_code == b"E":
                error = pg.parse_error_fields(message.payload)
        return QueryResult(columns, rows, command_tag, error)

    def terminate(self) -> None:
        """Send Terminate and close."""
        try:
            self._wire.send(pg.build_terminate())
        except WireError:
            pass
        self._wire.close()

    def close(self) -> None:
        """Close the connection without the Terminate courtesy."""
        self._wire.close()

    def _parse(self, data: bytes) -> list[pg.BackendMessage]:
        try:
            return pg.parse_backend_messages(data)
        except ProtocolError as exc:
            raise WireError(f"malformed server data: {exc}") from exc


def _parse_columns(payload: bytes) -> list[str]:
    import struct

    (count,) = struct.unpack_from(">h", payload, 0)
    columns = []
    offset = 2
    for _ in range(count):
        end = payload.find(b"\x00", offset)
        columns.append(payload[offset:end].decode("utf-8", "replace"))
        offset = end + 1 + 18  # fixed per-column descriptor
    return columns
