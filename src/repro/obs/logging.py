"""Structured JSONL operational logging with correlation IDs.

Every record is one JSON object per line: a timestamp, a level, an
``event`` name (dotted, like metric names), the correlation fields
bound on the current context (``run_id``, ``shard``, ``session_id``,
...), and any event-specific fields.  Correlation context is carried
in a :mod:`contextvars` variable, so it follows ``asyncio`` tasks and
survives thread-pool hops started after the bind::

    with logging.bind(run_id=run_id):
        log = obs.current().logger
        with logging.bind(session_id=f"{honeypot_id}-7"):
            log.info("conn.open", src="203.0.113.9")
            # {"ts": ..., "level": "info", "event": "conn.open",
            #  "run_id": "...", "session_id": "...", "src": "..."}

The logger fans each record out to its attached sinks: zero or more
JSONL streams/files plus (typically) the run's
:class:`~repro.obs.flight.FlightRecorder`, so the last N records are
always available for a crash dump even when no log file is configured.
:class:`NullOpsLogger` is the zero-cost default for uninstrumented
runs.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

__all__ = ["OpsLogger", "NullOpsLogger", "bind", "context_fields"]

#: Correlation fields bound on the current execution context, stored
#: as an immutable tuple-of-pairs so nested binds never mutate shared
#: state.
_context: contextvars.ContextVar[tuple[tuple[str, object], ...]] = \
    contextvars.ContextVar("repro_ops_log_context", default=())


@contextmanager
def bind(**fields: object) -> Iterator[None]:
    """Add correlation fields to every record logged inside the block."""
    token = _context.set(_context.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _context.reset(token)


def context_fields() -> dict[str, object]:
    """The correlation fields currently bound (later binds win)."""
    return dict(_context.get())


class OpsLogger:
    """Fans structured records out to JSONL sinks (thread-safe)."""

    enabled = True

    def __init__(self, *, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._streams: list = []
        self._owned: list = []
        self._recorders: list[Callable[[dict], None]] = []
        #: Records emitted (whether or not any sink is attached).
        self.records = 0

    # -- sink management --------------------------------------------------

    def attach_stream(self, stream) -> None:
        """Write every subsequent record to ``stream`` as a JSON line."""
        with self._lock:
            self._streams.append(stream)

    def attach_path(self, path: str | Path) -> Path:
        """Open ``path`` (append) and write records there; owned, so
        :meth:`close` closes it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "a", encoding="utf-8")
        with self._lock:
            self._streams.append(handle)
            self._owned.append(handle)
        return path

    def attach_recorder(self, record: Callable[[dict], None]) -> None:
        """Also hand every record dict to ``record`` (flight recorder)."""
        with self._lock:
            self._recorders.append(record)

    def close(self) -> None:
        """Flush and close every sink this logger opened itself."""
        with self._lock:
            for handle in self._owned:
                try:
                    handle.close()
                except OSError:
                    pass
            self._streams = [stream for stream in self._streams
                             if stream not in self._owned]
            self._owned = []

    # -- emission ---------------------------------------------------------

    def log(self, event: str, level: str = "info",
            **fields: object) -> None:
        """Emit one structured record."""
        record = {"ts": round(self._clock(), 6), "level": level,
                  "event": event}
        record.update(context_fields())
        record.update(fields)
        with self._lock:
            self.records += 1
            if self._streams:
                line = json.dumps(record, separators=(",", ":"),
                                  sort_keys=False, default=str) + "\n"
                for stream in self._streams:
                    try:
                        stream.write(line)
                    except (OSError, ValueError):
                        pass
            for recorder in self._recorders:
                recorder(record)

    def info(self, event: str, **fields: object) -> None:
        self.log(event, "info", **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log(event, "warning", **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log(event, "error", **fields)


class NullOpsLogger(OpsLogger):
    """Drops every record -- the zero-cost default."""

    enabled = False

    def attach_stream(self, stream) -> None:
        pass

    def attach_path(self, path: str | Path) -> Path:
        return Path(path)

    def attach_recorder(self, record: Callable[[dict], None]) -> None:
        pass

    def log(self, event: str, level: str = "info",
            **fields: object) -> None:
        pass
