"""The live operations plane: streaming shard telemetry + HTTP surface.

Three cooperating pieces turn a multi-hour ``repro run --workers N``
from a black box into something watchable while it runs:

* **Metrics bus.**  Each replay worker owns a private
  :class:`~repro.obs.metrics.MetricsRegistry`; a :class:`ShardEmitter`
  periodically snapshots it, computes the *delta* since its previous
  emission (:func:`snapshot_delta`), and ships the delta over a
  queue/pipe to the parent.  The parent's :class:`LiveBus` drains the
  queue on a background thread and folds every delta into a
  :class:`LiveAggregator` via :meth:`MetricsRegistry.merge` -- counters
  and histogram deltas are additive, so the live aggregate converges
  to exactly the end-of-run merged registry (gauges fold by ``max``,
  the same order-independent rule ``merge`` uses).
* **Exposition.**  :class:`LiveOpsServer` is an in-process HTTP
  listener serving ``/metrics`` (Prometheus text, rendered from any
  snapshot source) and ``/healthz`` (JSON from a health callable);
  ``repro serve`` points it at the supervisor's per-honeypot listener
  state, ``repro run --live-port`` at the live aggregate.
* **Progress.**  Every bus message carries the shard's visit/event
  progress, so the driver can print progress lines and write
  incremental manifest snapshots instead of going dark for the whole
  replay.

Everything here is parent/worker plumbing around the existing
registry; nothing touches visit replay, so live telemetry cannot
change event streams (asserted by the sharded-equality tests).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.obs.exposition import render_prometheus
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "LiveAggregator", "LiveBus", "LiveOpsServer", "ShardEmitter",
    "counters_equal", "snapshot_delta",
]


# -- delta computation ------------------------------------------------------

def _label_key(entry: dict) -> tuple:
    return (entry["name"], tuple(sorted(entry["labels"].items())))


def snapshot_delta(previous: dict | None, current: dict) -> dict:
    """The registry change between two :meth:`MetricsRegistry.snapshot`
    dumps of the *same* registry, in snapshot form.

    Counters and histograms are monotonic, so their delta is a plain
    difference (series with no change are dropped); merging every
    successive delta therefore reconstructs the final snapshot exactly.
    Gauges are state, not accumulation: the delta carries their current
    values and the aggregate folds them with ``merge``'s max rule.
    """
    if previous is None:
        return current
    delta: dict = {"counters": [], "gauges": current.get("gauges", []),
                   "histograms": []}
    seen = {_label_key(entry): entry["value"]
            for entry in previous.get("counters", [])}
    for entry in current.get("counters", []):
        change = entry["value"] - seen.get(_label_key(entry), 0)
        if change:
            delta["counters"].append({**entry, "value": change})

    prior = {_label_key(entry): entry
             for entry in previous.get("histograms", [])}
    for entry in current.get("histograms", []):
        before = prior.get(_label_key(entry))
        if before is None:
            delta["histograms"].append(entry)
            continue
        count = entry["count"] - before["count"]
        if not count:
            continue
        old_buckets = {bucket["le"]: bucket["count"]
                       for bucket in before.get("buckets", [])}
        buckets = []
        for bucket in entry.get("buckets", []):
            change = bucket["count"] - old_buckets.get(bucket["le"], 0)
            if change:
                buckets.append({"le": bucket["le"], "count": change})
        delta["histograms"].append({
            "name": entry["name"], "labels": entry["labels"],
            "count": count, "sum": entry["sum"] - before["sum"],
            # min/max are current cumulative extrema; merge keeps
            # min-of-mins / max-of-maxes, so folding them is exact.
            "min": entry.get("min"), "max": entry.get("max"),
            "buckets": buckets,
        })
    return delta


def counters_equal(left: dict, right: dict) -> bool:
    """Whether two snapshots agree on every counter and histogram.

    The live-vs-merged invariant: gauges are excluded because a live
    aggregate legitimately keeps the max *over time* while an
    end-of-run merge keeps the max of *final* values.
    """
    def additive(snapshot: dict) -> tuple:
        counters = sorted(
            (entry["name"], tuple(sorted(entry["labels"].items())),
             entry["value"])
            for entry in snapshot.get("counters", []))
        histograms = sorted(
            (entry["name"], tuple(sorted(entry["labels"].items())),
             entry["count"], round(entry["sum"], 9),
             tuple(sorted((bucket["le"], bucket["count"])
                          for bucket in entry.get("buckets", []))))
            for entry in snapshot.get("histograms", []))
        return (counters, histograms)

    return additive(left) == additive(right)


# -- worker side ------------------------------------------------------------

class ShardEmitter:
    """Worker-side half of the bus: periodic delta emissions.

    ``send`` is the queue's ``put``; the emitter never blocks the visit
    loop for longer than one snapshot + one pickle.  Call
    :meth:`maybe_emit` once per visit (cheap clock check) and
    :meth:`flush` when the shard finishes.
    """

    def __init__(self, shard: int, registry: MetricsRegistry,
                 send: Callable[[dict], None], *,
                 interval: float = 0.5,
                 clock: Callable[[], float] | None = None):
        self.shard = shard
        self.registry = registry
        self.interval = interval
        self.emissions = 0
        self._send = send
        self._clock = clock if clock is not None else time.perf_counter
        self._last = self._clock()
        self._previous: dict | None = None
        self.visits_done = 0
        self.events_done = 0

    def advance(self, events: int) -> None:
        """Account one replayed visit, then emit if the interval passed."""
        self.visits_done += 1
        self.events_done += events
        if self._clock() - self._last >= self.interval:
            self.emit()

    def emit(self, *, done: bool = False) -> None:
        current = self.registry.snapshot()
        delta = snapshot_delta(self._previous, current)
        self._previous = current
        self._last = self._clock()
        self.emissions += 1
        self._send({"shard": self.shard, "seq": self.emissions,
                    "visits": self.visits_done,
                    "events": self.events_done,
                    "metrics": delta, "done": done})

    def flush(self) -> None:
        """Final emission; marks the shard done on the parent side."""
        self.emit(done=True)


# -- parent side ------------------------------------------------------------

class LiveAggregator:
    """Folds shard deltas into one live registry + progress table."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self.shards: dict[int, dict] = {}
        self.messages = 0

    def fold(self, message: dict) -> None:
        self.registry.merge(message.get("metrics") or {})
        with self._lock:
            self.messages += 1
            self.shards[message["shard"]] = {
                "visits": message.get("visits", 0),
                "events": message.get("events", 0),
                "emissions": message.get("seq", 0),
                "done": bool(message.get("done")),
            }

    def progress(self) -> dict:
        """Totals across every shard heard from so far."""
        with self._lock:
            shards = {shard: dict(state)
                      for shard, state in self.shards.items()}
        return {
            "shards_reporting": len(shards),
            "shards_done": sum(1 for s in shards.values() if s["done"]),
            "visits": sum(s["visits"] for s in shards.values()),
            "events": sum(s["events"] for s in shards.values()),
            "emissions": sum(s["emissions"] for s in shards.values()),
            "per_shard": shards,
        }

    def snapshot(self) -> dict:
        return self.registry.snapshot()


#: End-of-stream sentinel on the bus queue.
_CLOSE = None


class LiveBus:
    """Parent-side drainer: a queue plus the thread that folds it.

    ``queue`` must support ``put``/``get`` and carry pickled dicts --
    a ``queue.Queue`` for thread-pool workers, an
    ``mp_context.SimpleQueue`` for fork-pool workers (the child
    inherits the write end).  ``on_message`` (optional) runs on the
    drainer thread after each fold -- progress printing and incremental
    snapshot writes hang off it; its exceptions are contained and
    counted so a display bug can never stall the bus.
    """

    def __init__(self, queue, *,
                 aggregator: LiveAggregator | None = None,
                 on_message: Callable[[LiveAggregator, dict], None]
                 | None = None):
        self.queue = queue
        self.aggregator = (aggregator if aggregator is not None
                           else LiveAggregator())
        self.on_message = on_message
        self.callback_errors = 0
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._drain, name="live-bus", daemon=True)
            self._thread.start()

    def _drain(self) -> None:
        while True:
            message = self.queue.get()
            if message is _CLOSE:
                return
            self.aggregator.fold(message)
            if self.on_message is not None:
                try:
                    self.on_message(self.aggregator, message)
                except Exception:
                    self.callback_errors += 1

    def stop(self) -> None:
        """Close the stream; every message put before this is folded."""
        if self._thread is not None:
            self.queue.put(_CLOSE)
            self._thread.join()
            self._thread = None


# -- HTTP exposition --------------------------------------------------------

class LiveOpsServer:
    """In-process HTTP listener serving ``/metrics`` and ``/healthz``.

    ``metrics_source`` returns a registry snapshot (rendered as
    Prometheus text); ``health_source`` returns a JSON-serializable
    dict whose top-level ``"status"`` of ``"ok"`` maps to HTTP 200 and
    anything else to 503, so load balancers and uptime probes can use
    the endpoint unmodified.  Runs on a daemon thread; request logging
    is suppressed (the ops log is the record of note, not httpd noise).
    """

    def __init__(self, metrics_source: Callable[[], dict],
                 health_source: Callable[[], dict], *,
                 host: str = "127.0.0.1", port: int = 0):
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                try:
                    if self.path.split("?", 1)[0] == "/metrics":
                        body = render_prometheus(
                            outer.metrics_source()).encode("utf-8")
                        content_type = ("text/plain; version=0.0.4; "
                                        "charset=utf-8")
                        status = 200
                    elif self.path.split("?", 1)[0] == "/healthz":
                        health = outer.health_source()
                        body = (json.dumps(health, indent=2,
                                           sort_keys=True, default=str)
                                + "\n").encode("utf-8")
                        content_type = "application/json"
                        status = (200 if health.get("status") == "ok"
                                  else 503)
                    else:
                        body = b"not found\n"
                        content_type = "text/plain"
                        status = 404
                except Exception as error:  # surface, don't kill thread
                    body = f"error: {error}\n".encode("utf-8")
                    content_type = "text/plain"
                    status = 500
                outer.requests += 1
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:
                pass

        self.metrics_source = metrics_source
        self.health_source = health_source
        self.requests = 0
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Begin serving; returns the bound port."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="live-ops-http", daemon=True)
            self._thread.start()
        return self.port

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()
