"""Run manifests (``run_report.json``) and their human-readable summary.

A manifest is a plain JSON document describing one experiment run:
phase wall-times, event counts broken down by type / DBMS / interaction
/ honeypot, visits replayed, bytes exchanged, database row counts, and
peak RSS.  :func:`write_report` / :func:`load_report` round-trip it;
:func:`format_summary` renders the table shown by ``repro stats``.
"""

from __future__ import annotations

import json
import sys
from datetime import datetime, timezone
from pathlib import Path

#: Manifest schema identifier; bump the suffix on breaking changes.
SCHEMA = "repro.run_report/1"

#: Default manifest file name, written next to the SQLite databases.
REPORT_FILENAME = "run_report.json"


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, or ``None`` if unknown."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return rss if sys.platform == "darwin" else rss * 1024


def write_report(manifest: dict, path: str | Path) -> Path:
    """Serialize ``manifest`` to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_report(path: str | Path) -> dict:
    """Load and validate a manifest written by :func:`write_report`.

    Raises
    ------
    ValueError
        If the file is not a run-report manifest.
    """
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    schema = manifest.get("schema", "") if isinstance(manifest, dict) else ""
    if not str(schema).startswith("repro.run_report/"):
        raise ValueError(f"{path} is not a run_report manifest "
                         f"(schema={schema!r})")
    return manifest


def utc_now_iso() -> str:
    """Current wall-clock time as an ISO-8601 UTC string."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Minimal fixed-width table (kept local: obs must stay stdlib-only
    and not pull in the numpy-backed analysis layer)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [max(len(header), *(len(row[i]) for row in cells))
              if cells else len(header)
              for i, header in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(cell.ljust(w) for cell, w in zip(row, widths))
              for row in cells]
    return "\n".join(lines)


def _format_bytes(count: object) -> str:
    try:
        count = float(count)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "?"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return (f"{count:.0f} {unit}" if unit == "B"
                    else f"{count:.1f} {unit}")
        count /= 1024
    return "?"  # pragma: no cover


def format_summary(manifest: dict) -> str:
    """Render a manifest as the human-readable ``repro stats`` report."""
    sections: list[str] = []
    if manifest.get("partial"):
        # Incremental snapshot from the live reporter: the run is
        # either still going or died before its final manifest.
        sections.append(
            "*** PARTIAL REPORT: run in progress or interrupted ***\n"
            "    (a crashed checkpointed run can be continued with "
            "`repro run --resume`)")
    config = manifest.get("config", {})
    header = (
        f"run report ({manifest.get('generated_at', 'unknown time')})\n"
        f"  seed={config.get('seed')}  scale={config.get('volume_scale')}"
        f"  output={config.get('output_dir')}")
    if config.get("workers", 1) != 1:
        header += f"  workers={config.get('workers')}"
    if manifest.get("run_id"):
        header += f"\n  run_id={manifest['run_id']}"
    sections.append(header)

    wall = manifest.get("wall_time_seconds")
    phases = manifest.get("phases", {})
    if phases:
        total = sum(phases.values()) or 1.0
        reference = wall if wall else total
        rows = [[name, f"{seconds:.3f}",
                 f"{100.0 * seconds / reference:.1f}%"]
                for name, seconds in phases.items()]
        rows.append(["(total)", f"{sum(phases.values()):.3f}", ""])
        if wall is not None:
            rows.append(["(wall)", f"{wall:.3f}", "100.0%"])
        sections.append("phases\n" + _format_table(
            ["phase", "seconds", "share"], rows))

    totals = [
        ["visits", manifest.get("visits_total", "?")],
        ["events", manifest.get("events_total", "?")],
    ]
    split = manifest.get("split", {})
    if split:
        totals.append(["events (low tier)", split.get("low", "?")])
        totals.append(["events (mid/high tier)", split.get("midhigh", "?")])
    db_rows = manifest.get("db_rows", {})
    if db_rows:
        totals.append(["db rows (low)", db_rows.get("low", "?")])
        totals.append(["db rows (midhigh)", db_rows.get("midhigh", "?")])
    io = manifest.get("bytes", {})
    if io:
        totals.append(["bytes in",
                       f"{io.get('in', '?')} ({_format_bytes(io.get('in'))})"])
        totals.append(["bytes out",
                       f"{io.get('out', '?')} "
                       f"({_format_bytes(io.get('out'))})"])
    rss = manifest.get("peak_rss_bytes")
    if rss is not None:
        totals.append(["peak RSS", _format_bytes(rss)])
    sections.append("totals\n" + _format_table(["metric", "value"], totals))

    replay = manifest.get("replay") or {}
    if replay.get("shards"):
        rows = [[shard.get("shard", "?"), shard.get("visits", "?"),
                 shard.get("events", "?"),
                 f"{shard.get('wall_seconds', 0.0):.3f}"]
                for shard in replay["shards"]]
        table = _format_table(["shard", "visits", "events", "seconds"],
                              rows)
        merge = replay.get("merge_seconds")
        if merge is not None:
            table += f"\nmerge: {merge:.3f}s ({replay.get('pool', '?')} pool)"
        sections.append(
            f"replay ({replay.get('executor', '?')}, "
            f"{replay.get('workers', '?')} workers)\n" + table)

    resilience = manifest.get("resilience", {})
    if resilience:
        rows = [
            ["events generated", resilience.get("events_generated", "?")],
            ["events stored", resilience.get("events_stored", "?")],
            ["events quarantined",
             resilience.get("events_quarantined", "?")],
            ["quarantined visits",
             resilience.get("quarantined_visits", "?")],
            ["conservation",
             "OK" if resilience.get("conservation_ok") else "VIOLATED"],
        ]
        if resilience.get("fault_plan"):
            rows.append(["fault plan", resilience["fault_plan"]])
        for site, stats in sorted(resilience.get("faults", {}).items()):
            rows.append([f"fault {site}",
                         f"{stats.get('fires', '?')} fires"])
        if resilience.get("dead_letter"):
            rows.append(["dead letter", resilience["dead_letter"]])
        sections.append("resilience\n" + _format_table(
            ["metric", "value"], rows))

    for key, title in (("events_by_type", "events by type"),
                       ("events_by_dbms", "events by dbms"),
                       ("events_by_interaction", "events by interaction")):
        counts = manifest.get(key)
        if counts:
            rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            sections.append(title + "\n" + _format_table(
                ["key", "count"], [[k, v] for k, v in rows]))

    by_honeypot = manifest.get("events_by_honeypot")
    if by_honeypot:
        rows = sorted(by_honeypot.items(), key=lambda kv: (-kv[1], kv[0]))
        shown = rows[:15]
        table = _format_table(["honeypot", "count"],
                              [[k, v] for k, v in shown])
        if len(rows) > len(shown):
            table += f"\n... and {len(rows) - len(shown)} more honeypots"
        sections.append("busiest honeypots\n" + table)

    checkpoint = manifest.get("checkpoint")
    if checkpoint:
        rows = [
            ["interval", f"{checkpoint.get('interval_seconds', '?')}s"],
            ["checkpoints", checkpoint.get("count", "?")],
            ["barrier time",
             f"{checkpoint.get('barrier_seconds', 0.0):.3f}s"],
            ["journal", checkpoint.get("journal", "?")],
        ]
        resume = checkpoint.get("resume")
        if resume:
            rows.append(["resumed",
                         f"mode={resume.get('mode')} from checkpoint "
                         f"{resume.get('from_checkpoint')}"])
            rows.append(["fast-forwarded visits",
                         resume.get("fast_forwarded_visits", "?")])
            if resume.get("disarmed_sites"):
                rows.append(["disarmed fault sites",
                             ", ".join(resume["disarmed_sites"])])
        sections.append("checkpointing\n" + _format_table(
            ["metric", "value"], rows))

    live = manifest.get("live")
    if live:
        rows = [
            ["emissions", live.get("emissions", "?")],
            ["delta-merge exact",
             "OK" if live.get("equals_merged") else "DIVERGED"],
            ["progress lines", live.get("progress_lines", "?")],
            ["partial snapshots", live.get("partial_snapshots", "?")],
        ]
        if live.get("port"):
            rows.append(["http port", live["port"]])
            rows.append(["http requests", live.get("http_requests", "?")])
        if live.get("callback_errors"):
            rows.append(["callback errors", live["callback_errors"]])
        sections.append("live telemetry\n" + _format_table(
            ["metric", "value"], rows))

    trace = manifest.get("trace", {})
    if trace.get("spans"):
        where = trace.get("path") or "(not exported; pass --trace-out)"
        sections.append(f"trace: {trace['spans']} spans  {where}")
    return "\n\n".join(sections)
