"""Prometheus text exposition for a :class:`MetricsRegistry` snapshot.

Renders the registry's counters, gauges, and log-scale histograms in
the Prometheus text format (version 0.0.4) so a live run can be
scraped at ``/metrics``.  Pure stdlib and pure function: the renderer
takes either a registry or one of its :meth:`MetricsRegistry.snapshot`
dumps, so it works equally on the driver's own registry and on the
live aggregate folded from shard deltas.

Mapping rules:

* metric names are namespaced and sanitized -- ``tcp.bytes_in`` becomes
  ``repro_tcp_bytes_in``; counters additionally get the conventional
  ``_total`` suffix;
* labels are rendered sorted by key, values escaped per the exposition
  spec (backslash, double quote, newline);
* histograms become the conventional ``_bucket``/``_sum``/``_count``
  triplet with *cumulative* bucket counts and a terminal ``+Inf``
  bucket equal to ``_count`` (the registry stores per-bound counts;
  the renderer accumulates).
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import MetricsRegistry

__all__ = ["render_prometheus"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, namespace: str) -> str:
    """``tcp.bytes_in`` -> ``repro_tcp_bytes_in`` (always spec-valid)."""
    flat = _NAME_BAD_CHARS.sub("_", f"{namespace}_{name}" if namespace
                               else name)
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _label_name(name: str) -> str:
    flat = _NAME_BAD_CHARS.sub("_", name).replace(":", "_")
    if not flat or flat[0].isdigit():
        flat = "_" + flat
    return flat


def _escape_label_value(value: object) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: float) -> str:
    """Spec-friendly number rendering (integers without the ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: dict[str, object],
                   extra: list[tuple[str, str]] | None = None) -> str:
    pairs = [(_label_name(key), _escape_label_value(value))
             for key, value in sorted(labels.items())]
    if extra:
        pairs += extra
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def render_prometheus(source: "MetricsRegistry | dict", *,
                      namespace: str = "repro") -> str:
    """Render a registry (or snapshot dict) as Prometheus text.

    Series of one metric are grouped under a single ``# TYPE`` header;
    metrics are emitted sorted by exposition name, series sorted by
    label set, so the output is deterministic for a given snapshot.
    """
    snapshot = (source.snapshot() if isinstance(source, MetricsRegistry)
                else source)
    families: dict[str, tuple[str, list[str]]] = {}

    def family(name: str, kind: str) -> list[str]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (kind, [])
        return entry[1]

    for entry in snapshot.get("counters", []):
        name = _metric_name(entry["name"], namespace) + "_total"
        family(name, "counter").append(
            f"{name}{_render_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}")

    for entry in snapshot.get("gauges", []):
        name = _metric_name(entry["name"], namespace)
        family(name, "gauge").append(
            f"{name}{_render_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}")

    for entry in snapshot.get("histograms", []):
        name = _metric_name(entry["name"], namespace)
        lines = family(name, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bucket in sorted(entry.get("buckets", []),
                             key=lambda b: b["le"]):
            cumulative += bucket["count"]
            lines.append(
                f"{name}_bucket"
                f"{_render_labels(labels, [('le', _format_value(float(bucket['le'])))])}"
                f" {_format_value(cumulative)}")
        lines.append(
            f"{name}_bucket{_render_labels(labels, [('le', '+Inf')])} "
            f"{_format_value(entry.get('count', 0))}")
        lines.append(f"{name}_sum{_render_labels(labels)} "
                     f"{_format_value(entry.get('sum', 0.0))}")
        lines.append(f"{name}_count{_render_labels(labels)} "
                     f"{_format_value(entry.get('count', 0))}")

    out: list[str] = []
    for name in sorted(families):
        kind, lines = families[name]
        help_name = name[:-len("_total")] if kind == "counter" else name
        out.append(f"# HELP {name} repro metric {help_name}")
        out.append(f"# TYPE {name} {kind}")
        out.extend(sorted(lines) if kind != "histogram" else lines)
    return "\n".join(out) + ("\n" if out else "")
