"""Lightweight spans with parent/child nesting.

``tracer.span("convert.enrich", db="low")`` is a context manager; spans
opened while another span is active on the same thread become its
children.  Completed spans are recorded as plain dicts and can be
exported as JSONL (one span per line) or in the Chrome trace-event
format readable by ``chrome://tracing`` / https://ui.perfetto.dev.

The clock is injectable so tests can produce deterministic traces; the
default is :func:`time.perf_counter`.  All recorded times are seconds
relative to the tracer's construction.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path
from typing import Callable


class _SpanContext:
    """One active span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "start", "thread")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = next(tracer._ids)
        self.thread = threading.get_ident()
        self.start = tracer._clock()
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        tracer._record({
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start - tracer.epoch,
            "dur": end - self.start,
            "thread": self.thread,
            "attrs": self.attrs,
        })
        return False


class Tracer:
    """Collects completed spans as dicts (see module docstring).

    ``observer``, if given, is called with each completed span dict
    (the flight recorder hooks in here to keep a ring of recent
    spans).  Observer exceptions are contained: tracing must never
    take the traced code down.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None,
                 observer: Callable[[dict], None] | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        self._observer = observer
        self._lock = threading.Lock()
        self._locals = threading.local()
        self._ids = itertools.count(1)
        self.epoch = self._clock()
        self.spans: list[dict] = []
        #: ``pid`` -> display name for the Chrome export; populated by
        #: :meth:`absorb` when shard spans are stitched in.
        self.process_names: dict[int, str] = {}

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a span; use as ``with tracer.span("phase.step"): ...``."""
        return _SpanContext(self, name, attrs)

    def _stack(self) -> list:
        stack = getattr(self._locals, "stack", None)
        if stack is None:
            stack = self._locals.stack = []
        return stack

    def _record(self, span: dict) -> None:
        with self._lock:
            self.spans.append(span)
        if self._observer is not None:
            try:
                self._observer(span)
            except Exception:
                pass

    def absorb(self, spans: list[dict], *, pid: int,
               name: str | None = None) -> int:
        """Stitch another tracer's completed spans into this timeline.

        Used to merge per-shard replay traces into the driver's trace:
        each batch gets its own Chrome ``pid`` lane (the driver's own
        spans stay on pid 1) and fresh span ids, with parent links
        remapped within the batch, so ids never collide across shards.
        Returns the number of spans absorbed.
        """
        with self._lock:
            remapped: dict[object, int] = {}
            for span in spans:
                remapped[span["id"]] = next(self._ids)
            for span in spans:
                copy = dict(span)
                copy["id"] = remapped[copy["id"]]
                copy["parent"] = remapped.get(copy.get("parent"))
                copy["pid"] = pid
                self.spans.append(copy)
            if name is not None:
                self.process_names[pid] = name
        return len(spans)

    # -- export -----------------------------------------------------------

    def export_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per completed span; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            spans = list(self.spans)
        with open(path, "w", encoding="utf-8") as handle:
            for span in sorted(spans, key=lambda s: (s["start"], s["id"])):
                handle.write(json.dumps(span, separators=(",", ":"),
                                        sort_keys=True) + "\n")
        return path

    def export_chrome(self, path: str | Path) -> Path:
        """Write a ``chrome://tracing`` trace-event JSON file.

        Thread idents are remapped to small ``tid`` integers (per
        ``pid``) in first-seen order so traces are stable across runs.
        Spans absorbed from shard workers carry their own ``pid`` and
        appear as separate process lanes, labelled via
        ``process_name`` metadata events when :attr:`process_names`
        has entries.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            spans = list(self.spans)
            process_names = dict(self.process_names)
        tids: dict[tuple[int, int], int] = {}
        events = []
        for pid, name in sorted(process_names.items()):
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            })
        for span in sorted(spans, key=lambda s: (s["start"], s["id"])):
            pid = span.get("pid", 1)
            tid = tids.setdefault((pid, span["thread"]), len(tids))
            args = dict(span["attrs"])
            args["span_id"] = span["id"]
            if span["parent"] is not None:
                args["parent_id"] = span["parent"]
            events.append({
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round(span["start"] * 1e6, 3),
                "dur": round(span["dur"] * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        document = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return path


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Discards every span -- the zero-cost default."""

    enabled = False

    def __init__(self) -> None:
        self.spans: list[dict] = []
        self.process_names: dict[int, str] = {}

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def absorb(self, spans: list[dict], *, pid: int,
               name: str | None = None) -> int:
        return 0

    def export_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("", encoding="utf-8")
        return path

    def export_chrome(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"displayTimeUnit": "ms", "traceEvents": []}\n',
                        encoding="utf-8")
        return path
