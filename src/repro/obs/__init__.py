"""Observability: metrics, spans, phase timers, and run manifests.

The subsystem is bundled behind one object, :class:`Telemetry`::

    telemetry = Telemetry(enabled=True)
    with obs.install(telemetry):          # visible via obs.current()
        with telemetry.phases.phase("replay"):
            with telemetry.tracer.span("replay.visit", actor=ip):
                ...
        telemetry.metrics.inc("events", dbms="redis")

Layers that are not handed a telemetry object explicitly (log store,
clustering, converter) report into ``obs.current()``, which defaults to
:data:`NULL_TELEMETRY` -- a bundle of no-op implementations -- so
instrumentation is free unless a driver installs a live bundle.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.obs.flight import FlightRecorder, NullFlightRecorder
from repro.obs.logging import NullOpsLogger, OpsLogger
from repro.obs.metrics import (Histogram, MetricsRegistry,
                               NullMetricsRegistry)
from repro.obs.timing import NullPhaseTimer, PhaseTimer, Stopwatch
from repro.obs.tracing import NullTracer, Tracer

__all__ = [
    "FlightRecorder", "Histogram", "MetricsRegistry",
    "NullFlightRecorder", "NullMetricsRegistry", "NullOpsLogger",
    "NullPhaseTimer", "NullTracer", "OpsLogger", "PhaseTimer",
    "Stopwatch", "Telemetry", "Tracer", "NULL_TELEMETRY", "current",
    "install", "install_local",
]


class Telemetry:
    """One run's metrics registry + tracer + phase timer + ops plane.

    The operational half (structured :attr:`logger`, :attr:`flight`
    recorder) is wired so every log record lands in the flight ring
    and every completed span leaves a summary there -- the last N
    operational facts are always available for a crash dump, whether
    or not a log file was attached.
    """

    def __init__(self, enabled: bool = True, *,
                 flight_capacity: int = 512):
        self.enabled = enabled
        if enabled:
            self.metrics: MetricsRegistry = MetricsRegistry()
            self.flight: FlightRecorder = FlightRecorder(flight_capacity)
            self.tracer: Tracer | NullTracer = Tracer(
                observer=self.flight.record_span)
            self.phases: PhaseTimer = PhaseTimer()
            self.logger: OpsLogger = OpsLogger()
            self.logger.attach_recorder(self.flight.record)
        else:
            self.metrics = NullMetricsRegistry()
            self.flight = NullFlightRecorder()
            self.tracer = NullTracer()
            self.phases = NullPhaseTimer()
            self.logger = NullOpsLogger()

    def __repr__(self) -> str:
        return f"Telemetry(enabled={self.enabled})"


#: The always-available no-op bundle.
NULL_TELEMETRY = Telemetry(enabled=False)

_current: Telemetry = NULL_TELEMETRY

#: Per-thread override of the process-wide bundle, used by sharded
#: replay workers so each shard reports into its own registry without
#: clobbering the driver's.
_local = threading.local()


def current() -> Telemetry:
    """The installed telemetry bundle (no-op unless a run installed one).

    A thread-local bundle installed via :func:`install_local` shadows
    the process-wide one on its thread.
    """
    override = getattr(_local, "current", None)
    return override if override is not None else _current


@contextmanager
def install(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make ``telemetry`` the process-wide :func:`current` bundle."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous


@contextmanager
def install_local(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make ``telemetry`` the :func:`current` bundle on *this thread*
    only -- other threads keep seeing the process-wide bundle."""
    previous = getattr(_local, "current", None)
    _local.current = telemetry
    try:
        yield telemetry
    finally:
        _local.current = previous
