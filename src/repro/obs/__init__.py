"""Observability: metrics, spans, phase timers, and run manifests.

The subsystem is bundled behind one object, :class:`Telemetry`::

    telemetry = Telemetry(enabled=True)
    with obs.install(telemetry):          # visible via obs.current()
        with telemetry.phases.phase("replay"):
            with telemetry.tracer.span("replay.visit", actor=ip):
                ...
        telemetry.metrics.inc("events", dbms="redis")

Layers that are not handed a telemetry object explicitly (log store,
clustering, converter) report into ``obs.current()``, which defaults to
:data:`NULL_TELEMETRY` -- a bundle of no-op implementations -- so
instrumentation is free unless a driver installs a live bundle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import (Histogram, MetricsRegistry,
                               NullMetricsRegistry)
from repro.obs.timing import NullPhaseTimer, PhaseTimer, Stopwatch
from repro.obs.tracing import NullTracer, Tracer

__all__ = [
    "Histogram", "MetricsRegistry", "NullMetricsRegistry",
    "NullPhaseTimer", "NullTracer", "PhaseTimer", "Stopwatch",
    "Telemetry", "Tracer", "NULL_TELEMETRY", "current", "install",
]


class Telemetry:
    """One run's metrics registry + tracer + phase timer."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        if enabled:
            self.metrics: MetricsRegistry = MetricsRegistry()
            self.tracer: Tracer | NullTracer = Tracer()
            self.phases: PhaseTimer = PhaseTimer()
        else:
            self.metrics = NullMetricsRegistry()
            self.tracer = NullTracer()
            self.phases = NullPhaseTimer()

    def __repr__(self) -> str:
        return f"Telemetry(enabled={self.enabled})"


#: The always-available no-op bundle.
NULL_TELEMETRY = Telemetry(enabled=False)

_current: Telemetry = NULL_TELEMETRY


def current() -> Telemetry:
    """The installed telemetry bundle (no-op unless a run installed one)."""
    return _current


@contextmanager
def install(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make ``telemetry`` the process-wide :func:`current` bundle."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous
