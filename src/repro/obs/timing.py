"""``perf_counter``-based phase stopwatches.

:class:`PhaseTimer` accumulates wall time per named phase::

    timer = PhaseTimer()
    with timer.phase("build_world"):
        ...
    timer.as_dict()  # {"build_world": 0.42}

Re-entering a phase name accumulates (useful for per-batch loops).
:class:`Stopwatch` is the single-interval variant.  The null versions
make both free when telemetry is off.
"""

from __future__ import annotations

import time
from typing import Callable


class _Phase:
    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer: "PhaseTimer", name: str):
        self._timer = timer
        self._name = name

    def __enter__(self) -> "_Phase":
        self._start = self._timer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.add(self._name, self._timer._clock() - self._start)
        return False


class PhaseTimer:
    """Accumulates elapsed seconds per named phase, insertion-ordered."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        self._phases: dict[str, float] = {}

    def phase(self, name: str) -> _Phase:
        """Context manager timing one pass through phase ``name``."""
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into phase ``name`` directly."""
        self._phases[name] = self._phases.get(name, 0.0) + seconds

    def total(self) -> float:
        """Sum of all phase times."""
        return sum(self._phases.values())

    def as_dict(self) -> dict[str, float]:
        """Phase -> accumulated seconds, in first-seen order."""
        return dict(self._phases)


class _NullPhase:
    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class NullPhaseTimer(PhaseTimer):
    """Times nothing -- the zero-cost default."""

    enabled = False

    def phase(self, name: str) -> _NullPhase:  # type: ignore[override]
        return _NULL_PHASE

    def add(self, name: str, seconds: float) -> None:
        pass


class Stopwatch:
    """Single-interval timer: ``with Stopwatch() as w: ...; w.elapsed``."""

    __slots__ = ("_clock", "_start", "elapsed")

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = self._clock() - self._start
        return False
