"""Thread-safe in-process metrics: counters, gauges, histograms.

Pure stdlib.  A :class:`MetricsRegistry` stores labeled counters,
gauges, and log-scale histograms behind one lock; every mutation is a
single dict update, so instrumented hot paths stay cheap.  The
:class:`NullMetricsRegistry` turns every mutation into a no-op -- it is
the default, so un-instrumented runs pay nothing beyond an attribute
lookup and an empty method call.

Histograms use log-scale (power-of-two) buckets: an observation ``v``
lands in the bucket with the smallest upper bound ``2**k >= v``.  That
gives constant memory for value ranges spanning many orders of
magnitude (microseconds to minutes, single bytes to megabytes).
"""

from __future__ import annotations

import math
import threading

#: Labels are passed as keyword arguments and normalized to a sorted
#: tuple of (key, value) pairs so that label order never matters.
LabelKey = tuple[str, tuple[tuple[str, object], ...]]


def _key(name: str, labels: dict[str, object]) -> LabelKey:
    return (name, tuple(sorted(labels.items())))


class Histogram:
    """One log-scale histogram series (not thread-safe on its own;
    the registry serializes access)."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Upper bucket bound (``2**k``, or ``0.0`` for values <= 0)
        #: mapped to the number of observations it absorbed.
        self.buckets: dict[float, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            bound = 0.0
        else:
            bound = 2.0 ** math.ceil(math.log2(value))
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` of another histogram into this one."""
        count = snapshot.get("count", 0)
        if not count:
            return
        self.count += count
        self.total += snapshot.get("sum", 0.0)
        minimum = snapshot.get("min")
        if minimum is not None and minimum < self.min:
            self.min = minimum
        maximum = snapshot.get("max")
        if maximum is not None and maximum > self.max:
            self.max = maximum
        for bucket in snapshot.get("buckets", []):
            bound = bucket["le"]
            self.buckets[bound] = self.buckets.get(bound, 0) + bucket["count"]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": [{"le": bound, "count": count}
                        for bound, count in sorted(self.buckets.items())],
        }


class MetricsRegistry:
    """Labeled counters, gauges, and histograms behind one lock."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[LabelKey, float] = {}
        self._gauges: dict[LabelKey, float] = {}
        self._histograms: dict[LabelKey, Histogram] = {}

    # -- mutation ---------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        with self._lock:
            self._gauges[_key(name, labels)] = value

    def add_gauge(self, name: str, delta: float, **labels: object) -> None:
        """Move the gauge ``name{labels}`` by ``delta`` (from 0)."""
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = self._gauges.get(key, 0) + delta

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        key = _key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.observe(value)

    # -- reads ------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one exact counter series (0 if unseen)."""
        with self._lock:
            return self._counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all of its label sets."""
        with self._lock:
            return sum(value for (metric, _), value
                       in self._counters.items() if metric == name)

    def gauge_value(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._gauges.get(_key(name, labels), 0)

    def histogram(self, name: str, **labels: object) -> Histogram | None:
        with self._lock:
            return self._histograms.get(_key(name, labels))

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or one of its :meth:`snapshot` dumps)
        into this one.

        Counters add, histograms combine (count/sum/min/max/buckets),
        and gauges keep the maximum of the two sides -- the only merge
        that is order-independent, which is what folding per-shard
        registries back into a run-wide one requires.
        """
        snapshot = (other.snapshot() if isinstance(other, MetricsRegistry)
                    else other)
        with self._lock:
            for entry in snapshot.get("counters", []):
                key = _key(entry["name"], entry["labels"])
                self._counters[key] = (self._counters.get(key, 0)
                                       + entry["value"])
            for entry in snapshot.get("gauges", []):
                key = _key(entry["name"], entry["labels"])
                current = self._gauges.get(key)
                value = entry["value"]
                self._gauges[key] = (value if current is None
                                     else max(current, value))
            for entry in snapshot.get("histograms", []):
                key = _key(entry["name"], entry["labels"])
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = Histogram()
                histogram.merge(entry)

    def snapshot(self) -> dict:
        """JSON-serializable dump of every series, sorted by name."""
        with self._lock:
            return {
                "counters": [
                    {"name": name, "labels": dict(labels), "value": value}
                    for (name, labels), value
                    in sorted(self._counters.items())],
                "gauges": [
                    {"name": name, "labels": dict(labels), "value": value}
                    for (name, labels), value
                    in sorted(self._gauges.items())],
                "histograms": [
                    {"name": name, "labels": dict(labels),
                     **histogram.snapshot()}
                    for (name, labels), histogram
                    in sorted(self._histograms.items())],
            }


class NullMetricsRegistry(MetricsRegistry):
    """A registry that drops everything -- the zero-cost default."""

    enabled = False

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def add_gauge(self, name: str, delta: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass

    def merge(self, other: "MetricsRegistry | dict") -> None:
        pass
