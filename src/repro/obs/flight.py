"""Crash flight recorder: a bounded ring of recent telemetry records.

Long-running honeypot fleets die in ways the final manifest never
sees -- the manifest is only written on clean completion.  The flight
recorder keeps the last N operational records (structured log records,
completed spans, anything a subsystem cares to :meth:`record`) in a
bounded in-memory ring, and dumps them to a JSONL file when the
process is about to die: on an exception escaping the :meth:`armed`
block, or on SIGTERM.  Post-mortems of a quarantined visit or a
crashed shard then have the immediate context (which sessions were
open, which phase was running, the last faults fired) without paying
for full logging during normal operation.

The dump file starts with one header line (``kind: "flight_header"``,
the reason, pid, and record count) followed by the ring's records,
oldest first.  :class:`NullFlightRecorder` is the zero-cost default.
"""

from __future__ import annotations

import collections
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = ["FlightRecorder", "NullFlightRecorder"]


class FlightRecorder:
    """Bounded ring buffer of recent records, dumpable on crash."""

    enabled = True

    def __init__(self, capacity: int = 512,
                 clock=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._ring: collections.deque[dict] = collections.deque(
            maxlen=capacity)
        #: Total records ever seen (>= len(ring) once it wraps).
        self.recorded = 0
        #: Dumps performed (normally 0; 1 after a crash/SIGTERM).
        self.dumps = 0

    # -- recording --------------------------------------------------------

    def record(self, payload: dict) -> None:
        """Append one record (any JSON-serializable dict)."""
        with self._lock:
            self.recorded += 1
            self._ring.append(payload)

    def record_span(self, span: dict) -> None:
        """Tracer observer hook: keep a compact span summary."""
        self.record({"kind": "span", "name": span.get("name"),
                     "start": span.get("start"), "dur": span.get("dur"),
                     "attrs": span.get("attrs")})

    def records(self) -> list[dict]:
        """Copy of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    # -- dumping ----------------------------------------------------------

    def dump(self, path: str | Path, *, reason: str) -> Path:
        """Write the ring to ``path`` as JSONL, header line first."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            records = list(self._ring)
            recorded = self.recorded
            self.dumps += 1
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"kind": "flight_header", "reason": reason,
                 "pid": os.getpid(), "dumped_at": self._clock(),
                 "records": len(records), "recorded_total": recorded,
                 "capacity": self.capacity},
                separators=(",", ":"), default=str) + "\n")
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":"),
                                        default=str) + "\n")
        return path

    @contextmanager
    def armed(self, path: str | Path, *,
              signals: bool = True) -> Iterator["FlightRecorder"]:
        """Dump to ``path`` if the block dies.

        Covers two exits: an exception escaping the block (dumped, then
        re-raised) and SIGTERM (dumped, then the previous disposition
        runs -- by default the process dies, as the sender intended).
        The signal handler is only installed on the main thread of the
        process; elsewhere (worker threads) exception coverage still
        applies.
        """
        previous = None
        installed = False
        if signals and threading.current_thread() is threading.main_thread():
            def handler(signum, frame):
                self.dump(path, reason=f"signal:{signum}")
                signal.signal(signum, previous)
                os.kill(os.getpid(), signum)

            try:
                previous = signal.signal(signal.SIGTERM, handler)
                installed = True
            except (ValueError, OSError):  # pragma: no cover - exotic host
                installed = False
        try:
            yield self
        except BaseException as error:
            self.dump(path, reason=f"{type(error).__name__}: {error}")
            raise
        finally:
            if installed:
                signal.signal(signal.SIGTERM, previous)


class NullFlightRecorder(FlightRecorder):
    """Records nothing and never dumps -- the zero-cost default."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(self, payload: dict) -> None:
        pass

    def record_span(self, span: dict) -> None:
        pass

    def dump(self, path: str | Path, *, reason: str) -> Path:
        return Path(path)

    @contextmanager
    def armed(self, path: str | Path, *,
              signals: bool = True) -> Iterator["FlightRecorder"]:
        yield self
