"""Decoy Databases: a full reproduction of the IMC 2025 paper.

Reproduces "Decoy Databases: Analyzing Attacks on Public Facing
Databases" (Song, Smaragdakis, Griffioen) end to end: the five honeypot
families and their wire protocols, the Figure-1 data pipeline, the
scanning/scouting/exploiting analysis with TF + Ward clustering, and a
calibrated synthetic actor population standing in for the live
Internet.

Typical entry points:

>>> from repro.deployment import ExperimentConfig, run_experiment
>>> from repro.core.loading import load_ip_profiles
>>> from repro.core.reports import classification_table

See README.md for the tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
