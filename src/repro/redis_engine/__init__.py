"""In-memory Redis-like keyspace backing the medium-interaction honeypot."""

from repro.redis_engine.engine import RedisEngine, WrongTypeError

__all__ = ["RedisEngine", "WrongTypeError"]
