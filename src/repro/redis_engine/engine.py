"""A small Redis-compatible keyspace.

Backs :class:`repro.honeypots.redis_honeypot.RedisHoneypot`: state-changing
commands observed from attackers (``SET``, ``DEL``, ``FLUSHDB``,
``CONFIG SET`` for the P2PInfect cron/SSH-key tricks, ``SLAVEOF`` for
rogue-master module loading) really mutate state, which is what lets the
honeypot respond consistently across an attack session.

Strings (with lazy expiry), hashes, lists, counters and the
keyspace/meta commands are implemented -- the surface the paper's
attacks and scanner toolkits touch.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field


class WrongTypeError(Exception):
    """Operation applied against a key holding the wrong kind of value."""


#: Default CONFIG parameters, matching a stock Redis the attacks expect.
_DEFAULT_CONFIG = {
    "dir": "/var/lib/redis",
    "dbfilename": "dump.rdb",
    "rdbcompression": "yes",
    "save": "3600 1 300 100 60 10000",
    "maxmemory": "0",
    "appendonly": "no",
}


@dataclass
class Replication:
    """Replication role state (SLAVEOF target)."""

    master_host: str | None = None
    master_port: int | None = None

    @property
    def role(self) -> str:
        return "slave" if self.master_host else "master"


@dataclass
class RedisEngine:
    """The keyspace, configuration, and replication state.

    Key expiry is lazy: commands accept an optional ``now`` timestamp
    (the honeypot passes its simulated clock) and expired keys vanish
    on access.
    """

    version: str = "5.0.7"
    _strings: dict[bytes, bytes] = field(default_factory=dict)
    _hashes: dict[bytes, dict[bytes, bytes]] = field(default_factory=dict)
    _lists: dict[bytes, list[bytes]] = field(default_factory=dict)
    _expires: dict[bytes, float] = field(default_factory=dict)
    _config: dict[str, str] = field(
        default_factory=lambda: dict(_DEFAULT_CONFIG))
    replication: Replication = field(default_factory=Replication)
    loaded_modules: list[str] = field(default_factory=list)
    dirty: int = 0

    # -- expiry ----------------------------------------------------------

    def _purge(self, key: bytes, now: float | None) -> None:
        deadline = self._expires.get(key)
        if deadline is not None and now is not None and now >= deadline:
            self._strings.pop(key, None)
            self._hashes.pop(key, None)
            self._lists.pop(key, None)
            del self._expires[key]

    def expire(self, key: bytes, seconds: float,
               now: float | None = None) -> bool:
        """EXPIRE key seconds -> whether the key existed."""
        self._purge(key, now)
        if not self.exists(key):
            return False
        base = now if now is not None else 0.0
        self._expires[key] = base + seconds
        return True

    def ttl(self, key: bytes, now: float | None = None) -> int:
        """TTL key -> remaining seconds, -1 without expiry, -2 missing."""
        self._purge(key, now)
        if not self.exists(key):
            return -2
        deadline = self._expires.get(key)
        if deadline is None:
            return -1
        base = now if now is not None else 0.0
        return max(0, int(deadline - base))

    def persist(self, key: bytes, now: float | None = None) -> bool:
        """PERSIST key -> whether an expiry was removed."""
        self._purge(key, now)
        return self._expires.pop(key, None) is not None

    # -- string commands -------------------------------------------------

    def set(self, key: bytes, value: bytes, *,
            ex: float | None = None, now: float | None = None) -> None:
        """SET key value [EX seconds] (discards previous values)."""
        self._hashes.pop(key, None)
        self._lists.pop(key, None)
        self._expires.pop(key, None)
        self._strings[key] = value
        if ex is not None:
            base = now if now is not None else 0.0
            self._expires[key] = base + ex
        self.dirty += 1

    def get(self, key: bytes, now: float | None = None) -> bytes | None:
        """GET key -> value or ``None``.

        Raises
        ------
        WrongTypeError
            If the key holds a hash or list.
        """
        self._purge(key, now)
        if key in self._hashes or key in self._lists:
            raise WrongTypeError("WRONGTYPE Operation against a key "
                                 "holding the wrong kind of value")
        return self._strings.get(key)

    def incrby(self, key: bytes, delta: int,
               now: float | None = None) -> int:
        """INCRBY/DECRBY -> the new value.

        Raises
        ------
        ValueError
            If the current value is not an integer.
        WrongTypeError
            If the key holds a non-string.
        """
        current = self.get(key, now)
        if current is None:
            value = 0
        else:
            try:
                value = int(current)
            except ValueError:
                raise ValueError(
                    "ERR value is not an integer or out of range")
        value += delta
        self._strings[key] = str(value).encode()
        self.dirty += 1
        return value

    def append(self, key: bytes, suffix: bytes,
               now: float | None = None) -> int:
        """APPEND key value -> the new length."""
        current = self.get(key, now) or b""
        self._strings[key] = current + suffix
        self.dirty += 1
        return len(self._strings[key])

    # -- list commands ------------------------------------------------------

    def lpush(self, key: bytes, values: list[bytes]) -> int:
        """LPUSH key value [...] -> new list length."""
        target = self._list_for_write(key)
        for value in values:
            target.insert(0, value)
        self.dirty += 1
        return len(target)

    def rpush(self, key: bytes, values: list[bytes]) -> int:
        """RPUSH key value [...] -> new list length."""
        target = self._list_for_write(key)
        target.extend(values)
        self.dirty += 1
        return len(target)

    def lrange(self, key: bytes, start: int, stop: int) -> list[bytes]:
        """LRANGE key start stop (inclusive, negative indices allowed)."""
        if key in self._strings or key in self._hashes:
            raise WrongTypeError("WRONGTYPE Operation against a key "
                                 "holding the wrong kind of value")
        target = self._lists.get(key, [])
        length = len(target)
        if start < 0:
            start = max(0, length + start)
        if stop < 0:
            stop = length + stop
        return target[start:stop + 1]

    def llen(self, key: bytes) -> int:
        """LLEN key."""
        if key in self._strings or key in self._hashes:
            raise WrongTypeError("WRONGTYPE Operation against a key "
                                 "holding the wrong kind of value")
        return len(self._lists.get(key, []))

    def lpop(self, key: bytes) -> bytes | None:
        """LPOP key."""
        target = self._lists.get(key)
        if not target:
            return None
        value = target.pop(0)
        if not target:
            del self._lists[key]
        self.dirty += 1
        return value

    def _list_for_write(self, key: bytes) -> list[bytes]:
        if key in self._strings or key in self._hashes:
            raise WrongTypeError("WRONGTYPE Operation against a key "
                                 "holding the wrong kind of value")
        return self._lists.setdefault(key, [])

    # -- hash commands ----------------------------------------------------

    def hset(self, key: bytes, fields: dict[bytes, bytes]) -> int:
        """HSET key field value [...] -> number of new fields."""
        if key in self._strings:
            raise WrongTypeError("WRONGTYPE Operation against a key "
                                 "holding the wrong kind of value")
        bucket = self._hashes.setdefault(key, {})
        added = sum(1 for f in fields if f not in bucket)
        bucket.update(fields)
        self.dirty += 1
        return added

    def hgetall(self, key: bytes) -> dict[bytes, bytes]:
        """HGETALL key -> field map (empty when missing)."""
        if key in self._strings:
            raise WrongTypeError("WRONGTYPE Operation against a key "
                                 "holding the wrong kind of value")
        return dict(self._hashes.get(key, {}))

    # -- keyspace commands -------------------------------------------------

    def delete(self, keys: list[bytes]) -> int:
        """DEL key [...] -> number of keys removed."""
        removed = 0
        for key in keys:
            if (self._strings.pop(key, None) is not None
                    or self._hashes.pop(key, None) is not None
                    or self._lists.pop(key, None) is not None):
                removed += 1
            self._expires.pop(key, None)
        self.dirty += removed
        return removed

    def exists(self, key: bytes) -> bool:
        """EXISTS key."""
        return (key in self._strings or key in self._hashes
                or key in self._lists)

    def keys(self, pattern: bytes = b"*") -> list[bytes]:
        """KEYS pattern -> matching keys, sorted for determinism."""
        glob = pattern.decode("utf-8", "replace")
        every = (list(self._strings) + list(self._hashes)
                 + list(self._lists))
        return sorted(key for key in every
                      if fnmatch.fnmatchcase(key.decode("utf-8", "replace"),
                                             glob))

    def type(self, key: bytes) -> str:
        """TYPE key -> ``string``, ``hash``, ``list`` or ``none``."""
        if key in self._strings:
            return "string"
        if key in self._hashes:
            return "hash"
        if key in self._lists:
            return "list"
        return "none"

    def dbsize(self) -> int:
        """DBSIZE -> number of keys."""
        return len(self._strings) + len(self._hashes) + len(self._lists)

    def flushdb(self) -> None:
        """FLUSHDB: drop every key."""
        self._strings.clear()
        self._hashes.clear()
        self._lists.clear()
        self._expires.clear()
        self.dirty += 1

    # -- config / admin ----------------------------------------------------

    def config_get(self, parameter: str) -> dict[str, str]:
        """CONFIG GET pattern -> matching parameter map."""
        return {name: value for name, value in sorted(self._config.items())
                if fnmatch.fnmatchcase(name, parameter.lower())}

    def config_set(self, parameter: str, value: str) -> None:
        """CONFIG SET parameter value (unknown parameters are accepted,
        as an out-of-the-box Redis does for most of the ones attackers
        touch)."""
        self._config[parameter.lower()] = value

    def save(self) -> None:
        """SAVE: pretend to persist (resets the dirty counter)."""
        self.dirty = 0

    def slaveof(self, host: str | None, port: int | None) -> None:
        """SLAVEOF host port, or SLAVEOF NO ONE via ``(None, None)``."""
        self.replication.master_host = host
        self.replication.master_port = port

    def module_load(self, path: str) -> None:
        """MODULE LOAD path: record the attempted module."""
        self.loaded_modules.append(path)

    def module_unload(self, name: str) -> bool:
        """MODULE UNLOAD name -> whether a module matched.

        Modules register under their own internal names (the rogue
        ``exp.so`` registers as ``system``), which the honeypot cannot
        know; any loaded module therefore satisfies an unload request,
        matching by path first.
        """
        for index, path in enumerate(self.loaded_modules):
            if name in path:
                del self.loaded_modules[index]
                return True
        if self.loaded_modules:
            self.loaded_modules.pop()
            return True
        return False

    def info(self) -> str:
        """INFO -> the sections attackers parse (server, replication)."""
        lines = [
            "# Server",
            f"redis_version:{self.version}",
            "redis_mode:standalone",
            "os:Linux 5.4.0-72-generic x86_64",
            "arch_bits:64",
            "# Clients",
            "connected_clients:1",
            "# Replication",
            f"role:{self.replication.role}",
            "connected_slaves:0",
            "# Keyspace",
        ]
        if self.dbsize():
            lines.append(f"db0:keys={self.dbsize()},expires=0,avg_ttl=0")
        return "\r\n".join(lines) + "\r\n"
