"""Command-line interface (``python -m repro``).

Subcommands:

* ``run``            -- replay the 20-day deployment, write the SQLite
  databases (and optionally the raw logs / public dataset),
* ``report``         -- regenerate the paper's key tables from an
  existing run,
* ``stats``          -- pretty-print the ``run_report.json`` telemetry
  manifest of a previous ``repro run --telemetry``,
* ``serve``          -- start live TCP honeypots on loopback (supervised,
  with idle/byte limits) and print captured events until interrupted,
* ``export-dataset`` -- run a deployment and export the anonymized
  Appendix-B dataset,
* ``chaos``          -- run the deployment under a deterministic
  fault-injection plan and verify the conservation invariant
  ``events_generated == events_stored + events_quarantined``,
* ``verify``         -- audit a finished run's artifacts against every
  cross-artifact invariant (coded findings, ``--json``), or
  ``--differential``: replay one seed under an execution matrix and
  diff every artifact, bisecting the visit schedule on divergence,
* ``profile``        -- run a small deployment under ``cProfile`` and
  print the hot functions plus the compile/replay throughput numbers.

Exit codes: 0 success, 1 missing input (e.g. no database / manifest at
``--output``), 2 bad arguments.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.core.bruteforce import credential_stats, logins_by_country
from repro.core.campaigns import campaign_summary
from repro.core.reports import (classification_table, extrapolate,
                                format_table)
from repro.core.store import AnalysisStore
from repro.agents.population import build_world
from repro.core.temporal import hourly_series
from repro.deployment import (ExperimentConfig, resolve_workers,
                              run_experiment)
from repro.deployment.plan import build_plan


def _package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Decoy Databases reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {_package_version()}")
    subcommands = parser.add_subparsers(dest="command", required=True)

    run_cmd = subcommands.add_parser(
        "run", help="replay the 20-day deployment")
    run_cmd.add_argument("--seed", type=int, default=2024)
    run_cmd.add_argument("--scale", type=float, default=0.002,
                         help="login-volume scale factor")
    run_cmd.add_argument("--output", type=Path,
                         default=Path("experiment-output"))
    run_cmd.add_argument("--raw-logs", action="store_true",
                         help="also write consolidated JSONL raw logs")
    run_cmd.add_argument("--dataset", action="store_true",
                         help="also export the anonymized dataset")
    run_cmd.add_argument("--telemetry", action="store_true",
                         help="instrument the run and write "
                              "run_report.json next to the databases")
    run_cmd.add_argument("--trace-out", type=Path, default=None,
                         help="with --telemetry, export the span trace "
                              "here (.jsonl for JSON-lines, else Chrome "
                              "chrome://tracing format)")
    run_cmd.add_argument("--workers", default="1",
                         help="replay workers: 1 replays serially, N > 1 "
                              "shards the visit schedule by target "
                              "honeypot across N workers (same events, "
                              "same order); 'auto' matches the host's "
                              "core count")
    run_cmd.add_argument("--live-port", type=int, default=None,
                         help="with --telemetry, serve /metrics and "
                              "/healthz on this loopback port for the "
                              "duration of the run (0 picks a free port)")
    run_cmd.add_argument("--live-interval", type=float, default=0.0,
                         help="with --telemetry and --workers > 1, "
                              "stream shard telemetry to the driver "
                              "every this many seconds (progress lines "
                              "+ incremental run_report.json snapshots; "
                              "0 disables unless --live-port is given)")
    run_cmd.add_argument("--checkpoint-interval", type=float, default=0.0,
                         help="write a durable run-journal checkpoint "
                              "every this many seconds (fsync commit "
                              "barrier across both databases, raw logs "
                              "and the dead letter); 0 disables "
                              "checkpointing entirely (default)")
    run_cmd.add_argument("--resume", nargs="?", const="latest",
                         default=None, metavar="latest|force",
                         help="resume a crashed checkpointed run at "
                              "--output from its run journal; 'latest' "
                              "(the default) refuses on any damage "
                              "beyond a torn journal tail, 'force' "
                              "falls back to the newest checkpoint "
                              "that validates (or restarts)")

    report_cmd = subcommands.add_parser(
        "report", help="print the key tables of an existing run")
    report_cmd.add_argument("--output", type=Path,
                            default=Path("experiment-output"),
                            help="directory of a previous `repro run`")
    report_cmd.add_argument("--scale", type=float, default=0.002,
                            help="scale used by that run (for "
                                 "extrapolation)")
    report_cmd.add_argument("--no-cache", action="store_true",
                            help="clear the analysis cache next to the "
                                 "databases and rebuild everything from "
                                 "a fresh scan")

    stats_cmd = subcommands.add_parser(
        "stats", help="pretty-print the run_report.json of a previous "
                      "`repro run --telemetry`")
    stats_cmd.add_argument("--output", type=Path,
                           default=Path("experiment-output"),
                           help="directory of a previous "
                                "`repro run --telemetry`")
    stats_cmd.add_argument("--json", action="store_true",
                           help="print the raw manifest JSON instead of "
                                "the human summary (for scripts/jq)")

    serve_cmd = subcommands.add_parser(
        "serve", help="serve live honeypots on loopback TCP ports")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port-base", type=int, default=None,
                           help="assign sequential ports starting here "
                                "instead of OS-picked ephemeral ports")
    serve_cmd.add_argument("--idle-timeout", type=float, default=300.0,
                           help="close connections idle for this many "
                                "seconds (0 disables)")
    serve_cmd.add_argument("--max-session-bytes", type=int,
                           default=1 << 20,
                           help="close connections after this many "
                                "received bytes (0 disables)")
    serve_cmd.add_argument("--live-port", type=int, default=None,
                           help="also serve /metrics (Prometheus text) "
                                "and /healthz (per-listener state) on "
                                "this loopback port (0 picks a free "
                                "port)")
    serve_cmd.add_argument("--report-out", type=Path, default=None,
                           help="write a final metrics-snapshot JSON "
                                "here on clean shutdown")
    serve_cmd.add_argument("--duration", type=float, default=0.0,
                           help="serve for this many seconds, then shut "
                                "down cleanly (0 = until Ctrl-C)")

    dataset_cmd = subcommands.add_parser(
        "export-dataset", help="run a deployment and export the "
                               "anonymized dataset")
    dataset_cmd.add_argument("--seed", type=int, default=2024)
    dataset_cmd.add_argument("--scale", type=float, default=0.001)
    dataset_cmd.add_argument("--output", type=Path,
                             default=Path("experiment-output"))

    chaos_cmd = subcommands.add_parser(
        "chaos", help="run the deployment under a fault-injection plan "
                      "and verify zero event loss")
    chaos_cmd.add_argument("--plan", default="all",
                           help="builtin plan name (see --list-plans) or "
                                "a JSON file {site: {probability, "
                                "max_fires, start_after}}")
    chaos_cmd.add_argument("--seed", type=int, default=2024)
    chaos_cmd.add_argument("--scale", type=float, default=0.0005,
                           help="login-volume scale factor")
    chaos_cmd.add_argument("--output", type=Path,
                           default=Path("chaos-output"))
    chaos_cmd.add_argument("--list-plans", action="store_true",
                           help="list the builtin fault plans and exit")
    chaos_cmd.add_argument("--workers", default="1",
                           help="replay workers (see `repro run "
                                "--workers`, including 'auto'); "
                                "conservation must hold under "
                                "sharding too")
    chaos_cmd.add_argument("--checkpoint-interval", type=float,
                           default=0.0,
                           help="checkpoint the chaos run every this "
                                "many seconds; a run killed by the "
                                "worker-kill plan then auto-resumes "
                                "from its last durable checkpoint")

    verify_cmd = subcommands.add_parser(
        "verify", help="audit a run's artifacts against every "
                       "cross-artifact invariant, or differentially "
                       "replay one seed under an execution matrix")
    verify_cmd.add_argument("--output", type=Path,
                            default=Path("experiment-output"),
                            help="directory of a previous `repro run "
                                 "--telemetry` to audit (ignored with "
                                 "--differential)")
    verify_cmd.add_argument("--json", action="store_true",
                            help="print the machine-readable findings "
                                 "report instead of the human summary")
    verify_cmd.add_argument("--differential", action="store_true",
                            help="replay one seed under a "
                                 "configuration matrix and diff every "
                                 "artifact instead of auditing an "
                                 "existing run")
    verify_cmd.add_argument("--seed", type=int, default=2024)
    verify_cmd.add_argument("--scale", type=float, default=0.0005,
                            help="login-volume scale factor for the "
                                 "differential runs")
    verify_cmd.add_argument("--workers", type=int, default=4,
                            help="worker count of the sharded matrix "
                                 "configurations")
    verify_cmd.add_argument("--matrix", default=None,
                            help="comma-separated matrix "
                                 "configurations (default: "
                                 "serial,thread,fork,telemetry-off; "
                                 "also: kill-resume, chaos)")
    verify_cmd.add_argument("--workdir", type=Path, default=None,
                            help="where the differential runs land "
                                 "(default: a temporary directory, "
                                 "removed afterwards)")

    profile_cmd = subcommands.add_parser(
        "profile", help="profile a small deployment run under cProfile "
                        "and print the hot functions")
    profile_cmd.add_argument("--seed", type=int, default=2024)
    profile_cmd.add_argument("--scale", type=float, default=5e-05,
                             help="login-volume scale factor (default is "
                                  "a quick profiling scale)")
    profile_cmd.add_argument("--top", type=int, default=20,
                             help="rows of the hot-function table to "
                                  "print")
    profile_cmd.add_argument("--sort", default="cumulative",
                             choices=["cumulative", "tottime", "calls"],
                             help="pstats sort order for the table")
    profile_cmd.add_argument("--output", type=Path, default=None,
                             help="run output directory (default: a "
                                  "temporary directory, removed "
                                  "afterwards)")
    profile_cmd.add_argument("--stats-out", type=Path, default=None,
                             help="also dump the raw pstats file here "
                                  "(loadable with pstats/snakeviz)")
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    if args.trace_out is not None and not args.telemetry:
        print("error: --trace-out requires --telemetry", file=sys.stderr)
        return 2
    if args.live_port is not None and not args.telemetry:
        print("error: --live-port requires --telemetry", file=sys.stderr)
        return 2
    if args.live_interval < 0:
        print(f"error: --live-interval must be >= 0, "
              f"got {args.live_interval}", file=sys.stderr)
        return 2
    if args.checkpoint_interval < 0:
        print(f"error: --checkpoint-interval must be >= 0, "
              f"got {args.checkpoint_interval}", file=sys.stderr)
        return 2
    if args.resume is not None and args.resume not in ("latest",
                                                       "force"):
        print(f"error: --resume takes 'latest' or 'force', "
              f"got {args.resume!r}", file=sys.stderr)
        return 2
    if args.dataset and (args.checkpoint_interval > 0 or args.resume):
        print("error: --dataset buffers every event in memory and "
              "cannot be combined with --checkpoint-interval or "
              "--resume", file=sys.stderr)
        return 2
    try:
        workers = resolve_workers(args.workers)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    from repro.deployment.checkpoint import (ResumeError,
                                             ResumeUnnecessary)

    try:
        result = run_experiment(ExperimentConfig(
            seed=args.seed, volume_scale=args.scale,
            output_dir=args.output, write_raw_logs=args.raw_logs,
            export_dataset=args.dataset, telemetry=args.telemetry,
            trace_out=args.trace_out, workers=workers,
            live_interval=args.live_interval, live_port=args.live_port,
            checkpoint_interval=args.checkpoint_interval,
            resume=args.resume))
    except ResumeUnnecessary as error:
        print(f"nothing to do: {error}")
        return 0
    except ResumeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if workers > 1:
        print(f"replay:   sharded across {workers} workers")
    print(f"visits:   {result.visits_total:,}")
    print(f"events:   {result.events_total:,}")
    print(f"low DB:   {result.low_db}")
    print(f"mid DB:   {result.midhigh_db}")
    if result.raw_log_dir:
        print(f"raw logs: {result.raw_log_dir}")
    if result.dataset_dir:
        print(f"dataset:  {result.dataset_dir}")
    if result.journal_path:
        print(f"journal:  {result.journal_path} "
              f"({result.checkpoints_taken} checkpoints)")
    if result.resumed:
        print(f"resumed:  {result.fast_forwarded_visits:,} visits "
              f"fast-forwarded")
    if result.report_path:
        print(f"report:   {result.report_path}")
    if result.trace_path:
        print(f"trace:    {result.trace_path}")
    return 0


def report_text(low: AnalysisStore, midhigh: AnalysisStore,
                scale: float) -> str:
    """Render the `repro report` tables from two analysis stores.

    Every derived artifact (profiles, TF matrices, linkage) is served
    through the stores, so a cold run performs one scan per database
    and a warm run zero; the rendered text is byte-identical either
    way.
    """
    series = hourly_series(low)
    sections = [
        f"Figure 2: {series.total_unique} unique low-tier IPs, "
        f"{series.mean_clients_per_hour():.1f} clients/hour, "
        f"{series.mean_new_per_hour():.1f} new/hour\n",
        "Table 5: top countries by login attempts",
        format_table(
            ["Country", "#Logins", "extrapolated", "#IP/Total"],
            [[r.country, r.logins, f"{extrapolate(r.logins, scale):,}",
              f"{r.login_ips}/{r.total_ips}"]
             for r in logins_by_country(low, top=10)]),
    ]

    stats = credential_stats(low, "mssql")
    sections += [
        "\nTable 12: top MSSQL credentials",
        format_table(["Username", "Password", "#"],
                     [[u, p or '""', c]
                      for (u, p), c in stats.top_pairs[:5]]),
        "\nTable 8: medium/high classification",
        format_table(
            ["DBMS", "#IP", "Scan", "Scout", "Exploit", "#Cls"],
            [[r.dbms, r.total_ips, r.scanning, r.scouting, r.exploiting,
              r.clusters]
             for r in classification_table(midhigh,
                                           distance_threshold=0.1)]),
        "\nTable 9: attack campaigns",
        format_table(
            ["Category", "DBMS", "Attack", "#IP"],
            [[r.category, r.dbms, r.tag, r.ip_count]
             for r in campaign_summary(midhigh.profiles())]),
    ]
    return "\n".join(sections)


def cmd_report(args: argparse.Namespace) -> int:
    if args.scale <= 0:
        print(f"error: --scale must be positive, got {args.scale}",
              file=sys.stderr)
        return 2
    if args.output.exists() and not args.output.is_dir():
        print(f"error: {args.output} is not a directory", file=sys.stderr)
        return 2
    low_db = args.output / "low.sqlite"
    midhigh_db = args.output / "midhigh.sqlite"
    for path in (low_db, midhigh_db):
        if not path.exists():
            print(f"error: {path} not found (run `repro run` first)",
                  file=sys.stderr)
            return 1

    use_cache = not args.no_cache
    with AnalysisStore(low_db, use_cache=use_cache) as low, \
            AnalysisStore(midhigh_db, use_cache=use_cache) as midhigh:
        if args.no_cache:
            removed = low.clear_cache() + midhigh.clear_cache()
            if removed:
                print(f"analysis cache: cleared {removed} artifacts",
                      file=sys.stderr)
        print(report_text(low, midhigh, args.scale))
        # Cache accounting goes to stderr so cold and warm runs emit
        # byte-identical reports on stdout (asserted in CI).
        for name, store in (("low", low), ("midhigh", midhigh)):
            stats = store.stats
            print(f"analysis cache [{name}]: {stats['hits']} hits, "
                  f"{stats['misses']} misses, {stats['scans']} scans",
                  file=sys.stderr)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.report import (REPORT_FILENAME, format_summary,
                                  load_report)

    path = args.output / REPORT_FILENAME
    if not path.exists():
        print(f"error: {path} not found "
              f"(run `repro run --telemetry` first)", file=sys.stderr)
        return 1
    try:
        manifest = load_report(path)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    print(format_summary(manifest))
    for line in _cache_summary(args.output):
        print(line)
    return 0


def _cache_summary(output_dir: Path) -> list[str]:
    """One line per populated analysis cache next to the run's databases."""
    lines = []
    for db_name in ("low.sqlite", "midhigh.sqlite"):
        cache_dir = output_dir / f"{db_name}.cache"
        artifacts = sorted(cache_dir.glob("*.pkl")) if cache_dir.is_dir() \
            else []
        if not artifacts:
            continue
        total = sum(path.stat().st_size for path in artifacts)
        lines.append(f"analysis cache [{db_name}]: {len(artifacts)} "
                     f"artifacts, {total / 1e6:.1f} MB "
                     f"(clear with `repro report --no-cache`)")
    return lines


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import time

    from repro import obs
    from repro.honeypots import (Elasticpot, LowInteractionMSSQL,
                                 LowInteractionMySQL, MongoHoneypot,
                                 RedisHoneypot, StickyElephant)
    from repro.honeypots.tcp import serve_honeypots
    from repro.netsim.clock import SimClock
    from repro.obs import live as obs_live
    from repro.pipeline.logstore import LogStore
    from repro.resilience import ServerSupervisor

    # A live farm is always instrumented: its registry feeds /metrics
    # and the optional shutdown snapshot; with neither requested the
    # counters are still cheap enough to keep.
    telemetry = obs.Telemetry(enabled=True)

    async def serve() -> None:
        clock = SimClock()
        store = LogStore()
        seen = 0
        deadline = (time.monotonic() + args.duration
                    if args.duration > 0 else None)

        honeypots = [
            LowInteractionMySQL("serve-mysql"),
            LowInteractionMSSQL("serve-mssql"),
            RedisHoneypot("serve-redis", config="fake_data"),
            StickyElephant("serve-postgresql"),
            Elasticpot("serve-elasticsearch"),
            MongoHoneypot("serve-mongodb"),
        ]
        servers = await serve_honeypots(
            honeypots, clock, store.append, host=args.host,
            port_base=args.port_base,
            idle_timeout=args.idle_timeout or None,
            max_session_bytes=args.max_session_bytes or None)
        supervisor = ServerSupervisor(servers)
        await supervisor.start()
        live_server = None
        if args.live_port is not None:
            live_server = obs_live.LiveOpsServer(
                telemetry.metrics.snapshot, supervisor.health,
                port=args.live_port)
            live_server.start()
        print("honeypots listening (supervised):")
        for server in servers:
            print(f"  {server.honeypot.dbms:15s} "
                  f"{args.host}:{server.port}")
        if live_server is not None:
            print(f"  {'live ops':15s} {live_server.host}:"
                  f"{live_server.port}  (/metrics, /healthz)")
        telemetry.logger.info("serve.listening",
                              listeners=len(servers),
                              live_port=(live_server.port
                                         if live_server else None))
        print("Ctrl-C to stop" if deadline is None
              else f"serving for {args.duration:g}s")
        try:
            while deadline is None or time.monotonic() < deadline:
                await asyncio.sleep(0.5)
                events = store.events()
                for event in events[seen:]:
                    print(f"[{event.dbms}] {event.src_ip} "
                          f"{event.event_type} {event.action or ''}")
                seen = len(events)
        except asyncio.CancelledError:
            pass
        finally:
            # Health is sampled before teardown: the snapshot records
            # the farm as it was serving, not the stopped listeners.
            final_health = supervisor.health()
            await supervisor.stop()
            for server in servers:
                await server.stop()
            if live_server is not None:
                live_server.close()
            if args.report_out is not None:
                import json

                snapshot = {
                    "kind": "repro.serve_snapshot",
                    "events_captured": len(store.events()),
                    "health": final_health,
                    "metrics": telemetry.metrics.snapshot(),
                }
                args.report_out.parent.mkdir(parents=True,
                                             exist_ok=True)
                args.report_out.write_text(
                    json.dumps(snapshot, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
                print(f"snapshot: {args.report_out}")

    try:
        with obs.install(telemetry):
            asyncio.run(serve())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience import faults

    if args.list_plans:
        for name in sorted(faults.BUILTIN_PLANS):
            sites = sorted(faults.BUILTIN_PLANS[name]) or ["(no faults)"]
            print(f"{name:15s} {', '.join(sites)}")
        return 0
    try:
        plan = faults.load_plan(args.plan, seed=args.seed)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        workers = resolve_workers(args.workers)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    from repro.deployment.checkpoint import ResumeError
    from repro.deployment.replay import WorkerLostError

    # The worker-kill plan SIGKILLs one shard worker mid-replay.  A
    # checkpointed run then resumes from its last durable checkpoint
    # (the kill site is disarmed by the resume); an uncheckpointed one
    # can only strip the site and start over.
    resume = None
    attempts = 0
    while True:
        try:
            result = run_experiment(ExperimentConfig(
                seed=args.seed, volume_scale=args.scale,
                output_dir=args.output, telemetry=True,
                fault_plan=plan, workers=workers,
                checkpoint_interval=args.checkpoint_interval,
                resume=resume))
            break
        except WorkerLostError as error:
            attempts += 1
            if attempts > 3:
                print(f"error: shard worker died {attempts} times; "
                      f"giving up", file=sys.stderr)
                return 1
            if args.checkpoint_interval > 0:
                print(f"chaos: {error}; resuming from the last durable "
                      f"checkpoint", file=sys.stderr)
                resume = "latest"
            else:
                print(f"chaos: {error}; no checkpoints -- disarming "
                      f"proc.kill and restarting from scratch",
                      file=sys.stderr)
                plan = plan.without_site("proc.kill")
        except ResumeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    # A resume adopts (and disarms proc.kill from) the journal's plan,
    # so the run-wide fire counts come from the manifest, not the
    # possibly-stale `plan` object here.
    fault_stats = (result.report or {}).get("resilience", {}).get(
        "faults") or plan.snapshot()
    print(f"plan:        {plan.name} (seed {args.seed})")
    if workers > 1:
        print(f"replay:      sharded across {workers} workers")
    if result.resumed:
        print(f"resumed:     from checkpoint "
              f"({result.fast_forwarded_visits:,} visits "
              f"fast-forwarded, {attempts} worker loss(es))")
    for site, stats in sorted(fault_stats.items()):
        print(f"  {site:18s} fired {stats['fires']:,} / "
              f"{stats['evaluations']:,} evaluations")
    print(f"generated:   {result.events_generated:,} events")
    print(f"stored:      {result.events_total:,} events")
    print(f"quarantined: {result.events_quarantined:,} events "
          f"in {result.quarantined_visits:,} visits")
    if result.quarantine_path:
        print(f"dead letter: {result.quarantine_path}")
    if result.report_path:
        print(f"report:      {result.report_path}")
    if result.conservation_ok:
        print("conservation: OK "
              "(generated == stored + quarantined)")
        return 0
    print("conservation: VIOLATED "
          f"({result.events_generated:,} != {result.events_total:,} + "
          f"{result.events_quarantined:,})", file=sys.stderr)
    return 1


def cmd_export_dataset(args: argparse.Namespace) -> int:
    result = run_experiment(ExperimentConfig(
        seed=args.seed, volume_scale=args.scale,
        output_dir=args.output, export_dataset=True))
    print(f"dataset: {result.dataset_dir}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats
    import shutil
    import tempfile
    import time

    if args.top <= 0:
        print("error: --top must be positive", file=sys.stderr)
        return 2
    keep = args.output is not None
    output_dir = args.output if keep else \
        Path(tempfile.mkdtemp(prefix="repro-profile-"))

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = run_experiment(ExperimentConfig(
        seed=args.seed, volume_scale=args.scale, output_dir=output_dir))
    profiler.disable()
    wall = time.perf_counter() - start

    # Compile-side numbers re-measured standalone (cheap at profiling
    # scales), so the schedule-compilation cost and the indexed plan's
    # lookup counter are visible without digging through the table.
    from repro.deployment.replay import compile_visits

    plan = build_plan(args.seed)
    world = build_world(args.seed, args.scale)
    compile_start = time.perf_counter()
    schedule = compile_visits(world, plan, args.seed)
    compile_wall = time.perf_counter() - compile_start

    print(f"end-to-end: {wall:.3f}s "
          f"({result.events_total} events, "
          f"{result.events_total / wall:,.0f} events/s)")
    print(f"compile_visits: {compile_wall:.3f}s "
          f"({len(schedule)} visits, "
          f"{len(schedule) / compile_wall:,.0f} visits/s)")
    print(f"plan.select_calls: {plan.select_calls}")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    if args.stats_out is not None:
        stats.dump_stats(args.stats_out)
        print(f"pstats dump: {args.stats_out}")
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if not keep:
        shutil.rmtree(output_dir, ignore_errors=True)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    import json
    import shutil
    import tempfile

    from repro.verify import (DEFAULT_MATRIX, MATRIX_CONFIGS,
                              AuditError, audit_run, run_matrix)

    if not args.differential:
        for flag, value, default in (("--matrix", args.matrix, None),
                                     ("--workdir", args.workdir, None)):
            if value != default:
                print(f"error: {flag} requires --differential",
                      file=sys.stderr)
                return 2
        try:
            result = audit_run(args.output)
        except AuditError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(result.as_dict(), indent=2,
                             sort_keys=True))
        else:
            for check in result.checks:
                detail = f"  ({check['detail']})" if check["detail"] \
                    else ""
                print(f"{check['status']:>7s}  {check['name']}{detail}")
            for finding in result.findings:
                print(f"finding: [{finding.code}] {finding.message}",
                      file=sys.stderr)
            print(f"verify: {len(result.findings)} finding(s) in "
                  f"{args.output}")
        return 0 if result.ok else 1

    if args.scale <= 0:
        print(f"error: --scale must be positive, got {args.scale}",
              file=sys.stderr)
        return 2
    if args.workers < 2:
        print(f"error: --workers must be >= 2 to shard, "
              f"got {args.workers}", file=sys.stderr)
        return 2
    configs = DEFAULT_MATRIX
    if args.matrix is not None:
        configs = tuple(name.strip()
                        for name in args.matrix.split(",")
                        if name.strip())
        unknown = [name for name in configs
                   if name not in MATRIX_CONFIGS]
        if not configs or unknown:
            print(f"error: --matrix takes a comma-separated subset of "
                  f"{', '.join(MATRIX_CONFIGS)}", file=sys.stderr)
            return 2
    keep = args.workdir is not None
    workdir = args.workdir if keep else \
        Path(tempfile.mkdtemp(prefix="repro-verify-"))
    try:
        report = run_matrix(workdir, seed=args.seed, scale=args.scale,
                            workers=args.workers, configs=configs)
    finally:
        if not keep:
            shutil.rmtree(workdir, ignore_errors=True)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    for config in report.configs:
        note = f"  ({config['note']})" if config["note"] else ""
        print(f"{config['status']:>7s}  {config['name']}{note}")
    for diff in report.diffs:
        print(f"diff: {diff['config']}: {diff['artifact']} "
              f"expected {diff['expected']!r}, "
              f"got {diff['actual']!r}", file=sys.stderr)
    for divergence in report.divergences:
        print(f"first divergent visit of {divergence['config']}: "
              f"{divergence['key']} (vs. {divergence['reference']})",
              file=sys.stderr)
    print(f"verify: {len(report.diffs)} difference(s) across "
          f"{len(report.configs)} configuration(s), seed {report.seed}")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "report": cmd_report,
        "stats": cmd_stats,
        "serve": cmd_serve,
        "export-dataset": cmd_export_dataset,
        "chaos": cmd_chaos,
        "verify": cmd_verify,
        "profile": cmd_profile,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pipe closed (e.g. `repro stats | head`); exit
        # quietly instead of tracebacking, without touching the
        # now-dead stdout.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
