"""Finding vocabulary of the run-artifact audit.

Every invariant the audit checks maps to exactly one finding code, so a
CI gate (or a mutation test) can assert not just *that* a corrupted run
fails verification but *why*.  Codes are stable identifiers; the
human-readable message carries the specifics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FINDING_CODES", "Finding"]

#: Every code :mod:`repro.verify.audit` can emit, with the invariant it
#: guards.  Keep in sync with README "Verification & differential
#: testing".
FINDING_CODES: dict[str, str] = {
    "MANIFEST_SCHEMA": ("run_report.json is missing, structurally "
                        "invalid, partial, or has the wrong schema"),
    "MANIFEST_COUNTS": ("manifest event counters disagree with each "
                        "other (events_total vs. the by-type/dbms/"
                        "interaction breakdowns and the tier split)"),
    "CONSERVATION": ("events_generated != events_stored + "
                     "events_quarantined in the resilience section"),
    "DB_ROWS": ("a database row count disagrees with the manifest's "
                "db_rows / split accounting"),
    "TIER_PURITY": ("a row sits in the wrong interaction tier "
                    "(low.sqlite must hold only interaction='low')"),
    "ID_CONTIGUITY": ("event ids are not the contiguous sequence "
                      "1..N insertion produces"),
    "RAW_COUNT": ("a raw-log group's line count disagrees with the "
                  "database rows of its (interaction, dbms, config) "
                  "group"),
    "RAW_ORDER": ("raw-log lines and database rows of a group "
                  "disagree in content or canonical order (or a raw "
                  "line fails to parse)"),
    "QUARANTINE": ("the dead-letter file disagrees with the "
                   "quarantine accounting (record/event counts, "
                   "canonical order, or parseability)"),
    "JOURNAL": ("the run journal is corrupt, belongs to a different "
                "run, or its digest chain does not match the on-disk "
                "databases"),
    "TRUNCATION": ("the logstore.raw_truncated counter claims more "
                   "clipped payloads than rows at the truncation "
                   "length exist"),
}


@dataclass
class Finding:
    """One violated invariant."""

    code: str
    message: str
    #: Machine-readable specifics (paths, expected/actual values).
    context: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in FINDING_CODES:
            raise ValueError(f"unknown finding code {self.code!r}")

    def as_dict(self) -> dict:
        return {"code": self.code, "message": self.message,
                "context": self.context}
