"""Layer 2 of ``repro verify``: the differential replay matrix.

One seed is replayed under a matrix of execution configurations --
serial, N-worker thread pool, N-worker fork pool, telemetry on vs.
off, checkpoint + SIGKILL + resume, and a keyed chaos plan -- and
every artifact is diffed against a reference run:

* database content via the chained prefix digest over all rows (the
  SQLite *files* legitimately differ byte-wise between the WAL and
  MEMORY-journal pragmas; the ordered row content must not),
* raw logs and the dead letter byte-for-byte,
* the telemetry manifest on its deterministic counters.

On a database divergence between two in-process-replayable
configurations, :func:`locate_divergence` re-replays the schedule
under both engines and walks the two canonical outcome streams to the
first divergent ``(offset, ip, seq)`` visit, reporting both event
records -- the schedule bisection that turns "the artifacts differ"
into "this visit differs".
"""

from __future__ import annotations

import hashlib
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro import obs
from repro.agents.population import build_world
from repro.deployment.checkpoint import ResumeUnnecessary
from repro.deployment.experiment import (ExperimentConfig,
                                         QUARANTINE_FILENAME,
                                         RAW_LOG_DIRNAME, run_experiment)
from repro.deployment.plan import build_plan
from repro.deployment.replay import build_engine, compile_visits
from repro.obs import report as obs_report
from repro.pipeline.convert import count_events, prefix_digest
from repro.resilience import faults
from repro.runtime import journal as run_journal

__all__ = ["DEFAULT_MATRIX", "MATRIX_CONFIGS", "DifferentialReport",
           "artifact_summary", "locate_divergence", "run_matrix"]

#: Every matrix configuration the runner knows, in run order.
MATRIX_CONFIGS = ("serial", "thread", "fork", "telemetry-off",
                  "kill-resume", "chaos")

#: What ``repro verify --differential`` runs without ``--matrix``.
DEFAULT_MATRIX = ("serial", "thread", "fork", "telemetry-off")

#: Fault plan the ``chaos`` pair runs.  Must be a *keyed* plan: keyed
#: sites decide per ``{seed}:{site}:{ip}:{seq}`` and so are identical
#: between serial and sharded execution, while unkeyed sites (the
#: wire.*/enrich.* specs in plan ``all``) draw from a shared sequential
#: RNG and are order-sensitive by design -- only stable serially.
CHAOS_PLAN = "visit-crash"

#: Manifest keys that must be identical across equivalent runs.
_MANIFEST_KEYS = ("visits_total", "events_total", "events_by_type",
                  "events_by_dbms", "events_by_interaction",
                  "events_by_honeypot", "split", "db_rows")

#: Resilience keys compared (``dead_letter`` is a per-directory path).
_RESILIENCE_KEYS = ("events_generated", "events_stored",
                    "events_quarantined", "quarantined_visits",
                    "conservation_ok", "fault_plan", "faults")


def artifact_summary(output_dir: str | Path) -> dict:
    """Content fingerprints of every comparable artifact of one run."""
    output_dir = Path(output_dir)
    summary: dict = {"db": {}, "raw": {}, "quarantine": None,
                     "manifest": None}
    for tier in ("low", "midhigh"):
        db_path = output_dir / f"{tier}.sqlite"
        rows = count_events(db_path)
        summary["db"][tier] = {"rows": rows,
                               "digest": prefix_digest(db_path, rows)}
    raw_dir = output_dir / RAW_LOG_DIRNAME
    if raw_dir.is_dir():
        for path in sorted(raw_dir.glob("*.jsonl")):
            summary["raw"][path.name] = hashlib.sha256(
                path.read_bytes()).hexdigest()
    quarantine = output_dir / QUARANTINE_FILENAME
    if quarantine.exists():
        summary["quarantine"] = hashlib.sha256(
            quarantine.read_bytes()).hexdigest()
    report_path = output_dir / obs_report.REPORT_FILENAME
    if report_path.exists():
        manifest = obs_report.load_report(report_path)
        subset = {key: manifest.get(key) for key in _MANIFEST_KEYS}
        resilience = manifest.get("resilience") or {}
        subset["resilience"] = {key: resilience.get(key)
                                for key in _RESILIENCE_KEYS}
        summary["manifest"] = subset
    return summary


def _diff_summaries(name: str, reference: dict, candidate: dict,
                    *, compare_manifest: bool = True) -> list[dict]:
    """Structured differences between two artifact summaries."""
    diffs: list[dict] = []

    def flag(artifact: str, expected, actual) -> None:
        diffs.append({"config": name, "artifact": artifact,
                      "expected": expected, "actual": actual})

    for tier in ("low", "midhigh"):
        if reference["db"][tier] != candidate["db"][tier]:
            flag(f"{tier}.sqlite", reference["db"][tier],
                 candidate["db"][tier])
    for group in sorted(set(reference["raw"]) | set(candidate["raw"])):
        if reference["raw"].get(group) != candidate["raw"].get(group):
            flag(f"raw-logs/{group}", reference["raw"].get(group),
                 candidate["raw"].get(group))
    if reference["quarantine"] != candidate["quarantine"]:
        flag(QUARANTINE_FILENAME, reference["quarantine"],
             candidate["quarantine"])
    if compare_manifest and reference["manifest"] is not None \
            and candidate["manifest"] is not None:
        for key, expected in reference["manifest"].items():
            actual = candidate["manifest"][key]
            if expected != actual:
                flag(f"manifest.{key}", expected, actual)
    return diffs


@dataclass
class DifferentialReport:
    """Everything one matrix sweep produced."""

    seed: int
    scale: float
    workers: int
    configs: list[dict] = field(default_factory=list)
    diffs: list[dict] = field(default_factory=list)
    divergences: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diffs

    def as_dict(self) -> dict:
        return {"seed": self.seed, "scale": self.scale,
                "workers": self.workers, "configs": self.configs,
                "diffs": self.diffs, "divergences": self.divergences,
                "ok": self.ok}


def _base_config(output_dir: Path, seed: int, scale: float,
                 **overrides) -> ExperimentConfig:
    defaults = dict(seed=seed, volume_scale=scale,
                    output_dir=output_dir, telemetry=True,
                    write_raw_logs=True)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _run_kill_resume(output_dir: Path, seed: int, scale: float,
                     workers: int, *, interval: float = 0.05,
                     timeout: float = 120.0) -> str:
    """Start a checkpointed run in a subprocess, SIGKILL it after its
    first durable checkpoint, then resume it in-process.

    Returns a note describing what actually happened (the run may
    finish before the kill lands at tiny scales -- then the completed
    artifacts stand on their own).
    """
    package_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(package_root)] + ([env["PYTHONPATH"]]
                               if env.get("PYTHONPATH") else []))
    argv = [sys.executable, "-m", "repro", "run",
            "--seed", str(seed), "--scale", str(scale),
            "--output", str(output_dir), "--telemetry", "--raw-logs",
            "--workers", str(workers),
            "--checkpoint-interval", str(interval)]
    journal = run_journal.journal_path(output_dir)
    process = subprocess.Popen(argv, env=env,
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
    killed = False
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break
            if journal.exists() and '"kind":"checkpoint"' in \
                    journal.read_text(encoding="utf-8",
                                      errors="replace"):
                process.send_signal(signal.SIGKILL)
                process.wait(timeout=30)
                killed = True
                break
            time.sleep(0.005)
        else:
            process.kill()
            process.wait(timeout=30)
            raise RuntimeError(
                f"kill-resume run at {output_dir} neither "
                f"checkpointed nor finished within {timeout}s")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    if not killed and process.returncode != 0:
        raise RuntimeError(
            f"kill-resume subprocess exited with "
            f"{process.returncode} before any checkpoint")
    if not killed:
        return "run completed before the kill could land"
    try:
        run_experiment(_base_config(
            output_dir, seed, scale, workers=1,
            checkpoint_interval=interval, resume="latest"))
    except ResumeUnnecessary:
        return "killed after completion record; nothing to resume"
    return "killed after first checkpoint, resumed from journal"


def run_matrix(workdir: str | Path, *, seed: int, scale: float,
               workers: int = 4,
               configs=DEFAULT_MATRIX) -> DifferentialReport:
    """Replay ``seed`` under every requested configuration and diff.

    ``workdir`` receives one run directory per configuration.  The
    ``serial`` reference is always run (and prepended when absent from
    ``configs``); ``chaos`` expands into a serial/sharded pair diffed
    against each other, since faulted artifacts legitimately differ
    from the clean reference.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    unknown = [name for name in configs if name not in MATRIX_CONFIGS]
    if unknown:
        raise ValueError(f"unknown matrix config(s) {unknown} "
                         f"(choose from {', '.join(MATRIX_CONFIGS)})")
    configs = list(dict.fromkeys(configs))
    if "serial" not in configs:
        configs.insert(0, "serial")
    report = DifferentialReport(seed=seed, scale=scale, workers=workers)
    logger = obs.current().logger
    summaries: dict[str, dict] = {}

    def run_one(name: str, note: str = "", **overrides) -> dict:
        output_dir = workdir / name
        run_experiment(_base_config(output_dir, seed, scale,
                                    **overrides))
        summary = artifact_summary(output_dir)
        summaries[name] = summary
        report.configs.append({"name": name,
                               "output_dir": str(output_dir),
                               "status": "ran", "note": note})
        return summary

    def skip(name: str, note: str) -> None:
        report.configs.append({"name": name, "output_dir": None,
                               "status": "skipped", "note": note})
        logger.info("verify.matrix_skip", config=name, note=note)

    reference = run_one("serial", workers=1)
    for name in configs:
        if name == "serial":
            continue
        logger.info("verify.matrix_run", config=name)
        if name == "thread":
            summary = run_one(name, workers=workers,
                              executor="sharded", pool="thread")
            report.diffs += _diff_summaries(name, reference, summary)
        elif name == "fork":
            if not _fork_available():
                skip(name, "fork start method unavailable")
                continue
            summary = run_one(name, workers=workers,
                              executor="sharded", pool="fork")
            report.diffs += _diff_summaries(name, reference, summary)
        elif name == "telemetry-off":
            summary = run_one(name, workers=1, telemetry=False)
            report.diffs += _diff_summaries(name, reference, summary,
                                            compare_manifest=False)
        elif name == "kill-resume":
            output_dir = workdir / name
            note = _run_kill_resume(output_dir, seed, scale, workers)
            summary = artifact_summary(output_dir)
            summaries[name] = summary
            report.configs.append({"name": name,
                                   "output_dir": str(output_dir),
                                   "status": "ran", "note": note})
            report.diffs += _diff_summaries(name, reference, summary)
        elif name == "chaos":
            chaos_reference = run_one(
                "chaos-serial", workers=1,
                fault_plan=faults.load_plan(CHAOS_PLAN, seed=seed))
            chaos_sharded = run_one(
                "chaos-sharded", workers=workers, executor="sharded",
                pool="thread",
                fault_plan=faults.load_plan(CHAOS_PLAN, seed=seed))
            report.diffs += _diff_summaries(
                "chaos-sharded", chaos_reference, chaos_sharded)

    _localize(report, summaries, seed=seed, scale=scale,
              workers=workers)
    return report


#: Configurations :func:`locate_divergence` can re-replay in-process,
#: as ``build_engine`` arguments (kill-resume diverges at the artifact
#: level instead).
_ENGINE_SPECS = {
    "serial": dict(workers=1),
    "thread": dict(workers=4, executor="sharded", pool="thread"),
    "fork": dict(workers=4, executor="sharded", pool="fork"),
    "telemetry-off": dict(workers=1),
    "chaos-serial": dict(workers=1),
    "chaos-sharded": dict(workers=4, executor="sharded",
                          pool="thread"),
}


def _localize(report: DifferentialReport, summaries: dict, *,
              seed: int, scale: float, workers: int) -> None:
    """Bisect each diverging config's schedule to the first bad visit."""
    diverged = {diff["config"] for diff in report.diffs
                if diff["artifact"].endswith(".sqlite")}
    for name in sorted(diverged):
        spec = _ENGINE_SPECS.get(name)
        if spec is None:
            continue
        spec = dict(spec)
        if spec.get("executor") == "sharded":
            spec["workers"] = workers
        fault = CHAOS_PLAN if name.startswith("chaos") else None
        reference_name = "chaos-serial" if name.startswith("chaos") \
            else "serial"
        if name == reference_name:
            continue
        divergence = locate_divergence(
            seed, scale, dict(workers=1), spec, fault_plan=fault)
        if divergence is not None:
            divergence["config"] = name
            divergence["reference"] = reference_name
            report.divergences.append(divergence)


def _materialize(seed: int, scale: float, spec: dict,
                 fault_plan: str | None):
    # Build the world/plan/schedule fresh per replay: honeypots are
    # stateful (attacks mutate their contents), so sharing one plan
    # between the two sides would leak the first replay's state into
    # the second and report a phantom divergence.
    plan = build_plan(seed)
    world = build_world(seed, scale)
    schedule = compile_visits(world, plan, seed)
    engine = build_engine(spec.get("workers", 1),
                          spec.get("executor", "auto"),
                          spec.get("pool", "auto"))
    telemetry = obs.Telemetry(enabled=False)
    installed = faults.load_plan(fault_plan, seed=seed) \
        if fault_plan else None
    with obs.install(telemetry), faults.install(installed):
        return list(engine.replay(schedule, plan, seed, telemetry))


def locate_divergence(seed: int, scale: float, spec_a: dict,
                      spec_b: dict,
                      fault_plan: str | None = None) -> dict | None:
    """Replay one schedule under two engine specs and report the first
    visit whose outcome differs, or ``None`` when the streams agree.

    Each spec is a ``build_engine`` argument dict (``workers``,
    ``executor``, ``pool``).  The returned record carries the divergent
    canonical key plus both sides' event records -- and flags length
    mismatches when one stream ends early.
    """
    outcomes_a = _materialize(seed, scale, spec_a, fault_plan)
    outcomes_b = _materialize(seed, scale, spec_b, fault_plan)

    def record(outcome) -> dict:
        return {"key": list(outcome.key),
                "target": outcome.target_key,
                "failure": outcome.failure,
                "events": [event.to_json() for event in outcome.events]}

    for index, (a, b) in enumerate(zip(outcomes_a, outcomes_b)):
        if a.key != b.key or a.events != b.events \
                or a.failure != b.failure:
            return {"index": index, "key": list(a.key),
                    "a": record(a), "b": record(b)}
    if len(outcomes_a) != len(outcomes_b):
        longer, side = ((outcomes_a, "a")
                        if len(outcomes_a) > len(outcomes_b)
                        else (outcomes_b, "b"))
        extra = longer[min(len(outcomes_a), len(outcomes_b))]
        return {"index": min(len(outcomes_a), len(outcomes_b)),
                "key": list(extra.key), side: record(extra),
                "note": f"stream {side} has "
                        f"{abs(len(outcomes_a) - len(outcomes_b))} "
                        f"extra outcome(s)"}
    return None
