"""Run-artifact verification: invariant audit + differential replay.

``repro verify`` is the standing correctness gate behind the repo's
core claim -- same seed, same artifacts, no silent accounting drift:

* :mod:`repro.verify.audit` re-derives every cross-artifact invariant
  of one finished run (conservation, manifest consistency, raw-log /
  database agreement, journal digest chains, truncation accounting),
* :mod:`repro.verify.differential` replays one seed under a matrix of
  execution configurations and diffs the artifacts, bisecting the
  visit schedule on divergence,
* :mod:`repro.verify.findings` is the stable finding-code vocabulary.
"""

from repro.verify.audit import AuditError, AuditResult, audit_run
from repro.verify.differential import (DEFAULT_MATRIX, MATRIX_CONFIGS,
                                       DifferentialReport,
                                       artifact_summary,
                                       locate_divergence, run_matrix)
from repro.verify.findings import FINDING_CODES, Finding

__all__ = [
    "AuditError", "AuditResult", "audit_run",
    "DEFAULT_MATRIX", "MATRIX_CONFIGS", "DifferentialReport",
    "artifact_summary", "locate_divergence", "run_matrix",
    "FINDING_CODES", "Finding",
]
