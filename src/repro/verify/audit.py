"""Layer 1 of ``repro verify``: the run-artifact invariant audit.

Given the output directory of a ``repro run --telemetry`` (raw logs,
checkpoint journal, and dead letter audited when present), re-derive
every cross-artifact invariant the system promises and report each
violation as a coded :class:`~repro.verify.findings.Finding`:

* the manifest is schema-valid, final (not partial), and internally
  consistent (``events_total`` vs. its own breakdowns and tier split),
* conservation: ``events_generated == events_stored +
  events_quarantined``,
* the SQLite databases hold exactly the rows the manifest claims, in
  the right tier, with the contiguous ids canonical insertion produces,
* raw-log line counts and contents match the database rows of each
  ``(interaction, dbms, config)`` group, in canonical order,
* the dead letter parses and matches the quarantine accounting,
* the run journal (when present) is structurally valid, belongs to
  this run, and its digest chain matches the on-disk databases,
* the truncation counters do not claim more clipped payloads than
  rows at the truncation length exist.

The audit is read-only and needs no replay; Layer 2 (differential
replay) lives in :mod:`repro.verify.differential`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.obs import report as obs_report
from repro.pipeline.convert import (count_events, group_counts,
                                    open_database, prefix_digest)
from repro.pipeline.logstore import MAX_RAW, LogEvent
from repro.resilience.deadletter import read_dead_letters
from repro.runtime import journal as run_journal
from repro.verify.findings import Finding

__all__ = ["AuditError", "AuditResult", "audit_run"]

#: Manifest sections the audit depends on; absence of any is a
#: MANIFEST_SCHEMA finding (everything downstream would be guesswork).
_REQUIRED_SECTIONS = (
    "config", "visits_total", "events_total", "events_by_type",
    "events_by_dbms", "events_by_interaction", "split", "db_rows",
    "resilience", "metrics",
)

#: The LogEvent fields a raw-log line shares with a database row.
_EVENT_FIELDS = (
    "timestamp", "honeypot_id", "honeypot_type", "dbms", "interaction",
    "config", "src_ip", "src_port", "event_type", "action", "username",
    "password", "raw",
)


class AuditError(RuntimeError):
    """The audit cannot run at all (missing run directory/manifest)."""


class AuditResult:
    """Findings plus a per-check trail of what ran."""

    def __init__(self, output_dir: Path):
        self.output_dir = output_dir
        self.findings: list[Finding] = []
        self.checks: list[dict] = []

    @property
    def ok(self) -> bool:
        return not self.findings

    def flag(self, code: str, message: str, **context) -> None:
        self.findings.append(Finding(code, message, context))
        obs.current().metrics.inc("verify.findings", code=code)

    def record(self, name: str, status: str, detail: str = "") -> None:
        self.checks.append({"name": name, "status": status,
                            "detail": detail})
        obs.current().metrics.inc("verify.checks", status=status)

    def as_dict(self) -> dict:
        return {
            "schema": "repro.verify_report/1",
            "output_dir": str(self.output_dir),
            "generated_at": obs_report.utc_now_iso(),
            "checks": self.checks,
            "findings": [finding.as_dict()
                         for finding in self.findings],
            "ok": self.ok,
        }


def _check(result: AuditResult, name: str):
    """Run one named check, recording ok/failed from its findings."""
    before = len(result.findings)

    def finish():
        status = "ok" if len(result.findings) == before else "failed"
        result.record(name, status)

    return finish


def audit_run(output_dir: str | Path) -> AuditResult:
    """Audit every artifact of one finished run.

    Raises :class:`AuditError` when there is nothing to audit (no such
    directory, no databases, or no telemetry manifest -- re-run with
    ``repro run --telemetry``).
    """
    output_dir = Path(output_dir)
    if not output_dir.is_dir():
        raise AuditError(f"no run directory at {output_dir}")
    report_path = output_dir / obs_report.REPORT_FILENAME
    if not report_path.exists():
        raise AuditError(
            f"no {obs_report.REPORT_FILENAME} at {output_dir} (the "
            f"audit needs a telemetry manifest; re-run with "
            f"`repro run --telemetry`)")
    for tier in ("low", "midhigh"):
        if not (output_dir / f"{tier}.sqlite").exists():
            raise AuditError(f"no {tier}.sqlite at {output_dir}")

    result = AuditResult(output_dir)
    manifest = _audit_manifest(result, report_path)
    if manifest is None:
        return result
    _audit_conservation(result, manifest)
    _audit_databases(result, manifest)
    _audit_raw_logs(result, manifest)
    _audit_quarantine(result, manifest)
    _audit_journal(result, manifest)
    _audit_truncation(result, manifest)
    return result


# -- manifest --------------------------------------------------------------

def _audit_manifest(result: AuditResult, report_path: Path):
    finish = _check(result, "manifest_schema")
    try:
        manifest = obs_report.load_report(report_path)
    except (ValueError, json.JSONDecodeError) as error:
        result.flag("MANIFEST_SCHEMA", str(error),
                    path=str(report_path))
        finish()
        return None
    if manifest.get("partial"):
        result.flag("MANIFEST_SCHEMA",
                    f"{report_path} is a partial (incremental) "
                    f"snapshot, not a final manifest",
                    path=str(report_path))
    missing = [section for section in _REQUIRED_SECTIONS
               if manifest.get(section) is None]
    if missing:
        result.flag("MANIFEST_SCHEMA",
                    f"{report_path} is missing required section(s) "
                    f"{missing}", missing=missing)
        finish()
        return None
    finish()

    finish = _check(result, "manifest_counts")
    total = manifest["events_total"]
    for section in ("events_by_type", "events_by_dbms",
                    "events_by_interaction"):
        summed = sum(manifest[section].values())
        if summed != total:
            result.flag("MANIFEST_COUNTS",
                        f"{section} sums to {summed}, but "
                        f"events_total is {total}",
                        section=section, summed=summed, total=total)
    split = manifest["split"]
    split_total = split.get("low", 0) + split.get("midhigh", 0)
    if split_total != total:
        result.flag("MANIFEST_COUNTS",
                    f"tier split sums to {split_total}, but "
                    f"events_total is {total}",
                    split=split, total=total)
    finish()
    return manifest


def _audit_conservation(result: AuditResult, manifest: dict) -> None:
    finish = _check(result, "conservation")
    res = manifest["resilience"]
    generated = res.get("events_generated", 0)
    stored = res.get("events_stored", 0)
    quarantined = res.get("events_quarantined", 0)
    if generated != stored + quarantined:
        result.flag("CONSERVATION",
                    f"events_generated ({generated}) != events_stored "
                    f"({stored}) + events_quarantined ({quarantined})",
                    generated=generated, stored=stored,
                    quarantined=quarantined)
    if not res.get("conservation_ok", False):
        result.flag("CONSERVATION",
                    "the manifest itself records conservation_ok="
                    "false")
    if stored != manifest["events_total"]:
        result.flag("CONSERVATION",
                    f"resilience.events_stored ({stored}) != "
                    f"events_total ({manifest['events_total']})",
                    stored=stored, total=manifest["events_total"])
    finish()


# -- databases -------------------------------------------------------------

def _audit_databases(result: AuditResult, manifest: dict) -> None:
    finish = _check(result, "db_rows")
    rows = {}
    for tier in ("low", "midhigh"):
        db_path = result.output_dir / f"{tier}.sqlite"
        rows[tier] = count_events(db_path)
        claimed = manifest["db_rows"].get(tier)
        if claimed != rows[tier]:
            result.flag("DB_ROWS",
                        f"{tier}.sqlite holds {rows[tier]} rows, but "
                        f"the manifest claims {claimed}",
                        tier=tier, actual=rows[tier], claimed=claimed)
        split = manifest["split"].get(tier)
        if split != rows[tier]:
            result.flag("DB_ROWS",
                        f"{tier}.sqlite holds {rows[tier]} rows, but "
                        f"the tier split claims {split}",
                        tier=tier, actual=rows[tier], split=split)
    finish()

    finish = _check(result, "tier_purity")
    for tier, condition in (("low", "interaction != 'low'"),
                            ("midhigh", "interaction = 'low'")):
        connection = open_database(result.output_dir / f"{tier}.sqlite")
        try:
            (stray,) = connection.execute(
                f"SELECT COUNT(*) FROM events WHERE {condition}"
            ).fetchone()
        finally:
            connection.close()
        if stray:
            result.flag("TIER_PURITY",
                        f"{tier}.sqlite holds {stray} row(s) of the "
                        f"wrong interaction tier ({condition})",
                        tier=tier, stray=stray)
    finish()

    finish = _check(result, "id_contiguity")
    for tier in ("low", "midhigh"):
        connection = open_database(result.output_dir / f"{tier}.sqlite")
        try:
            lowest, highest, count = connection.execute(
                "SELECT MIN(id), MAX(id), COUNT(*) FROM events"
            ).fetchone()
        finally:
            connection.close()
        if count and (lowest != 1 or highest != count):
            result.flag("ID_CONTIGUITY",
                        f"{tier}.sqlite ids span {lowest}..{highest} "
                        f"over {count} rows (expected the contiguous "
                        f"1..{count})",
                        tier=tier, min=lowest, max=highest, count=count)
    finish()


# -- raw logs --------------------------------------------------------------

def _raw_dir(result: AuditResult) -> Path:
    from repro.deployment.experiment import RAW_LOG_DIRNAME

    return result.output_dir / RAW_LOG_DIRNAME


def _audit_raw_logs(result: AuditResult, manifest: dict) -> None:
    if not manifest["config"].get("write_raw_logs"):
        result.record("raw_logs", "skipped",
                      "run wrote no raw logs (--raw-logs off)")
        return
    raw_dir = _raw_dir(result)
    finish = _check(result, "raw_count")
    if not raw_dir.is_dir():
        result.flag("RAW_COUNT",
                    f"the manifest says raw logs were written, but "
                    f"{raw_dir} does not exist", path=str(raw_dir))
        finish()
        return
    expected: dict[str, int] = {}
    for tier in ("low", "midhigh"):
        expected.update(
            group_counts(result.output_dir / f"{tier}.sqlite"))
    actual = {path.name: sum(1 for line in
                             path.read_text(encoding="utf-8")
                             .splitlines() if line)
              for path in sorted(raw_dir.glob("*.jsonl"))}
    for name in sorted(set(expected) | set(actual)):
        if expected.get(name, 0) != actual.get(name, 0):
            result.flag("RAW_COUNT",
                        f"raw log {name} holds {actual.get(name, 0)} "
                        f"line(s), but the databases hold "
                        f"{expected.get(name, 0)} row(s) of that "
                        f"group", group=name,
                        raw_lines=actual.get(name, 0),
                        db_rows=expected.get(name, 0))
    finish()

    finish = _check(result, "raw_order")
    for tier in ("low", "midhigh"):
        _audit_raw_order_tier(result, tier, raw_dir)
    finish()


def _audit_raw_order_tier(result: AuditResult, tier: str,
                          raw_dir: Path) -> None:
    """Events per group, in raw-file order, vs. DB rows in id order."""
    connection = open_database(result.output_dir / f"{tier}.sqlite")
    try:
        db_groups: dict[str, list[tuple]] = {}
        for row in connection.execute(
                f"SELECT {', '.join(_EVENT_FIELDS)} FROM events "
                f"ORDER BY id"):
            name = f"{row['interaction']}-{row['dbms']}-" \
                   f"{row['config']}.jsonl"
            db_groups.setdefault(name, []).append(
                tuple(row[fieldname] for fieldname in _EVENT_FIELDS))
    finally:
        connection.close()
    for name, db_rows in sorted(db_groups.items()):
        path = raw_dir / name
        if not path.exists():
            continue  # RAW_COUNT already flagged the missing group
        raw_rows: list[tuple] = []
        parse_failed = False
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            if not line:
                continue
            try:
                event = LogEvent.from_json(line)
            except (TypeError, ValueError) as error:
                result.flag("RAW_ORDER",
                            f"raw log {name} line {lineno} does not "
                            f"parse as a LogEvent: {error}",
                            group=name, line=lineno)
                parse_failed = True
                break
            raw_rows.append(tuple(getattr(event, fieldname)
                                  for fieldname in _EVENT_FIELDS))
        if parse_failed or len(raw_rows) != len(db_rows):
            continue  # count mismatches belong to RAW_COUNT
        for index, (raw_row, db_row) in enumerate(
                zip(raw_rows, db_rows)):
            if raw_row != db_row:
                result.flag(
                    "RAW_ORDER",
                    f"raw log {name} and {tier}.sqlite disagree at "
                    f"group position {index}: raw "
                    f"{dict(zip(_EVENT_FIELDS, raw_row))!r} vs. db "
                    f"{dict(zip(_EVENT_FIELDS, db_row))!r}",
                    group=name, tier=tier, position=index)
                break


# -- dead letter -----------------------------------------------------------

def _audit_quarantine(result: AuditResult, manifest: dict) -> None:
    from repro.deployment.experiment import QUARANTINE_FILENAME

    finish = _check(result, "quarantine")
    res = manifest["resilience"]
    quarantined_events = res.get("events_quarantined", 0)
    quarantined_visits = res.get("quarantined_visits", 0)
    path = result.output_dir / QUARANTINE_FILENAME
    if not path.exists():
        if quarantined_events or quarantined_visits:
            result.flag("QUARANTINE",
                        f"the manifest records {quarantined_visits} "
                        f"quarantined visit(s) / {quarantined_events} "
                        f"event(s), but {path} does not exist",
                        path=str(path))
        finish()
        return
    try:
        records = read_dead_letters(path)
    except (OSError, json.JSONDecodeError) as error:
        result.flag("QUARANTINE",
                    f"{path} does not parse: {error}", path=str(path))
        finish()
        return
    if len(records) != quarantined_visits:
        result.flag("QUARANTINE",
                    f"{path} holds {len(records)} record(s), but the "
                    f"manifest records {quarantined_visits} "
                    f"quarantined visit(s)",
                    records=len(records), claimed=quarantined_visits)
    events = sum(len(record.get("events", [])) for record in records)
    if events != quarantined_events:
        result.flag("QUARANTINE",
                    f"{path} holds {events} quarantined event(s), but "
                    f"the manifest records {quarantined_events}",
                    events=events, claimed=quarantined_events)
    keys = [(record.get("offset"), record.get("actor"),
             record.get("seq")) for record in records]
    for previous, current in zip(keys, keys[1:]):
        if not previous < current:
            result.flag("QUARANTINE",
                        f"dead-letter records out of canonical "
                        f"(offset, actor, seq) order: {previous!r} "
                        f"then {current!r}",
                        previous=list(previous), current=list(current))
            break
    finish()


# -- run journal -----------------------------------------------------------

def _audit_journal(result: AuditResult, manifest: dict) -> None:
    from repro.deployment.checkpoint import checkpoint_valid

    if not run_journal.journal_path(result.output_dir).exists():
        result.record("journal", "skipped",
                      "run was not checkpointed (no run journal)")
        return
    finish = _check(result, "journal")
    try:
        view = run_journal.read_journal(result.output_dir)
    except run_journal.JournalError as error:
        result.flag("JOURNAL", str(error))
        finish()
        return
    header = view.header or {}
    seed = manifest["config"].get("seed")
    if header.get("seed") != seed:
        result.flag("JOURNAL",
                    f"journal header seed {header.get('seed')!r} != "
                    f"manifest seed {seed!r}",
                    journal_seed=header.get("seed"), manifest_seed=seed)
    watermarks = [tuple(record["watermark"])
                  for record in view.checkpoints
                  if record.get("watermark")]
    for previous, current in zip(watermarks, watermarks[1:]):
        if not previous <= current:
            result.flag("JOURNAL",
                        f"checkpoint watermarks regress: {previous!r} "
                        f"then {current!r}",
                        previous=list(previous), current=list(current))
            break
    if view.checkpoints:
        reason = checkpoint_valid(result.output_dir,
                                  view.checkpoints[-1], header)
        if reason is not None:
            result.flag("JOURNAL",
                        f"last checkpoint does not validate against "
                        f"the on-disk artifacts: {reason}",
                        seq=view.checkpoints[-1].get("seq"))
    if view.complete is not None:
        for tier in ("low", "midhigh"):
            state = view.complete.get(tier) or {}
            rows = int(state.get("rows", 0))
            actual = count_events(result.output_dir / f"{tier}.sqlite")
            if rows != actual:
                result.flag("JOURNAL",
                            f"journal complete record says "
                            f"{tier}.sqlite committed {rows} row(s), "
                            f"but it holds {actual}",
                            tier=tier, committed=rows, actual=actual)
                continue
            recorded = state.get("digest")
            if recorded is not None:
                digest = prefix_digest(
                    result.output_dir / f"{tier}.sqlite", rows)
                if digest != recorded:
                    result.flag("JOURNAL",
                                f"{tier}.sqlite content digest does "
                                f"not match the journal's complete "
                                f"record over {rows} row(s)",
                                tier=tier, rows=rows,
                                recorded=recorded, actual=digest)
    finish()


# -- truncation accounting -------------------------------------------------

def _counter_total(manifest: dict, name: str) -> int:
    """Sum a counter over all label sets in the manifest snapshot."""
    return sum(entry["value"]
               for entry in manifest["metrics"].get("counters", [])
               if entry["name"] == name)


def _audit_truncation(result: AuditResult, manifest: dict) -> None:
    finish = _check(result, "truncation")
    claimed = _counter_total(manifest, "logstore.raw_truncated")
    at_limit = 0
    for tier in ("low", "midhigh"):
        connection = open_database(result.output_dir / f"{tier}.sqlite")
        try:
            (count,) = connection.execute(
                "SELECT COUNT(*) FROM events WHERE LENGTH(raw) = ?",
                (MAX_RAW,)).fetchone()
        finally:
            connection.close()
        at_limit += count
    # One-sided: a payload of exactly MAX_RAW characters is
    # indistinguishable from a clipped one, so rows at the limit bound
    # the truncation count from above but not below.
    if claimed > at_limit:
        result.flag("TRUNCATION",
                    f"the run counted {claimed} truncated payload(s), "
                    f"but only {at_limit} stored row(s) are at the "
                    f"{MAX_RAW}-character truncation length",
                    claimed=claimed, at_limit=at_limit)
    bytes_dropped = _counter_total(manifest,
                                   "logstore.raw_truncated_bytes")
    if claimed == 0 and bytes_dropped:
        result.flag("TRUNCATION",
                    f"raw_truncated_bytes is {bytes_dropped} but "
                    f"raw_truncated is 0",
                    bytes=bytes_dropped)
    finish()
