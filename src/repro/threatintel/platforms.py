"""Snapshot models of the four OSINT platforms the paper queries."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GreynoiseRecord:
    """One Greynoise entry: classification plus activity tags."""

    ip: str
    classification: str  # "malicious" | "benign" | "unknown"
    tags: tuple[str, ...] = ()
    cves: tuple[str, ...] = ()


@dataclass
class GreynoiseSnapshot:
    """IPs Greynoise has seen, with classification and tags."""

    _records: dict[str, GreynoiseRecord] = field(default_factory=dict)

    def add(self, record: GreynoiseRecord) -> None:
        self._records[record.ip] = record

    def lookup(self, ip: str) -> GreynoiseRecord | None:
        """Return the record for ``ip``, or ``None`` if unseen."""
        return self._records.get(ip)

    def is_malicious(self, ip: str) -> bool:
        record = self._records.get(ip)
        return record is not None and record.classification == "malicious"

    def __len__(self) -> int:
        return len(self._records)


@dataclass(frozen=True)
class AbuseReport:
    """One user report on AbuseIPDB."""

    ip: str
    category: str  # e.g. "port scan", "brute-force", "sql injection"
    age_days: int


@dataclass
class AbuseIPDBSnapshot:
    """User-submitted abuse reports, queryable by recency."""

    _reports: dict[str, list[AbuseReport]] = field(default_factory=dict)

    def add(self, report: AbuseReport) -> None:
        self._reports.setdefault(report.ip, []).append(report)

    def reports(self, ip: str, *, within_days: int = 180
                ) -> list[AbuseReport]:
        """Reports for ``ip`` no older than ``within_days``."""
        return [report for report in self._reports.get(ip, [])
                if report.age_days <= within_days]

    def recently_reported(self, ip: str, *, within_days: int = 180) -> bool:
        return bool(self.reports(ip, within_days=within_days))

    def __len__(self) -> int:
        return len(self._reports)


@dataclass(frozen=True)
class CymruRecord:
    """A Team Cymru scout verdict."""

    ip: str
    rating: str  # "suspicious" | "no rating"
    tags: tuple[str, ...] = ()


@dataclass
class TeamCymruSnapshot:
    """Team Cymru scout API verdicts."""

    _records: dict[str, CymruRecord] = field(default_factory=dict)

    def add(self, record: CymruRecord) -> None:
        self._records[record.ip] = record

    def lookup(self, ip: str) -> CymruRecord | None:
        return self._records.get(ip)

    def is_suspicious(self, ip: str) -> bool:
        record = self._records.get(ip)
        return record is not None and record.rating == "suspicious"

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class FeodoTracker:
    """The abuse.ch botnet C2 indicator list."""

    c2_ips: set[str] = field(default_factory=set)

    def add(self, ip: str) -> None:
        self.c2_ips.add(ip)

    def is_c2(self, ip: str) -> bool:
        return ip in self.c2_ips

    def __len__(self) -> int:
        return len(self.c2_ips)


@dataclass
class ThreatIntelWorld:
    """All four platform snapshots, as one queryable bundle."""

    greynoise: GreynoiseSnapshot = field(default_factory=GreynoiseSnapshot)
    abuseipdb: AbuseIPDBSnapshot = field(default_factory=AbuseIPDBSnapshot)
    teamcymru: TeamCymruSnapshot = field(default_factory=TeamCymruSnapshot)
    feodo: FeodoTracker = field(default_factory=FeodoTracker)
