"""Cross-referencing attacker IPs against the OSINT platforms.

Reproduces the coverage analysis of Sections 5 and 6.2: for a set of
IPs observed misbehaving at the honeypots, how many does each platform
already know about?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.threatintel.platforms import ThreatIntelWorld


@dataclass(frozen=True)
class CoverageReport:
    """Per-platform coverage of one IP population."""

    population: int
    greynoise_malicious: int
    abuseipdb_reported: int
    cymru_suspicious: int
    feodo_c2: int

    def rate(self, count: int) -> float:
        """Coverage fraction for one platform count."""
        if self.population == 0:
            return 0.0
        return count / self.population

    def rows(self) -> list[tuple[str, int, float]]:
        """(platform, flagged, fraction) rows for reporting."""
        return [
            ("Greynoise (malicious)", self.greynoise_malicious,
             self.rate(self.greynoise_malicious)),
            ("AbuseIPDB (reported, 180d)", self.abuseipdb_reported,
             self.rate(self.abuseipdb_reported)),
            ("Team Cymru (suspicious)", self.cymru_suspicious,
             self.rate(self.cymru_suspicious)),
            ("FEODO (C2)", self.feodo_c2, self.rate(self.feodo_c2)),
        ]


def crossref(ips: Iterable[str], intel: ThreatIntelWorld) -> CoverageReport:
    """Compute per-platform coverage for ``ips``."""
    unique = sorted(set(ips))
    return CoverageReport(
        population=len(unique),
        greynoise_malicious=sum(
            1 for ip in unique if intel.greynoise.is_malicious(ip)),
        abuseipdb_reported=sum(
            1 for ip in unique if intel.abuseipdb.recently_reported(ip)),
        cymru_suspicious=sum(
            1 for ip in unique if intel.teamcymru.is_suspicious(ip)),
        feodo_c2=sum(1 for ip in unique if intel.feodo.is_c2(ip)),
    )
