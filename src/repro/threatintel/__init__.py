"""Offline threat-intelligence platform snapshots.

The paper cross-references its attackers against Greynoise, AbuseIPDB,
the Team Cymru scout API and the abuse.ch FEODO tracker, finding that
brute-forcers are moderately well covered (21% / 65% / 48% / 0%) while
sophisticated exploiters largely evade all four (11% / 15% / 2% / 0%).
This package provides snapshot databases with exactly that coverage
behavior, plus the cross-referencing report used by the benches.
"""

from repro.threatintel.platforms import (AbuseIPDBSnapshot, FeodoTracker,
                                         GreynoiseSnapshot,
                                         TeamCymruSnapshot,
                                         ThreatIntelWorld)
from repro.threatintel.crossref import CoverageReport, crossref

__all__ = [
    "GreynoiseSnapshot",
    "AbuseIPDBSnapshot",
    "TeamCymruSnapshot",
    "FeodoTracker",
    "ThreatIntelWorld",
    "CoverageReport",
    "crossref",
]
