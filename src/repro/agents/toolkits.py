"""Scanner/scout toolkit pools.

Real attack traffic comes from many different tools, each with its own
probe list; that diversity is what makes the paper's clustering find
20-79 behavioral clusters per honeypot (Table 8).  This module
generates deterministic pools of "toolkits" -- per-tool probe command
subsets -- which the population builder assigns to actors.  Actors
sharing a toolkit produce identical TF vectors and fall into one
cluster; different toolkits separate.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.agents.base import VisitContext, run_quietly
from repro.clients import (ElasticClient, MongoClient, PostgresClient,
                           RedisClient, WireError)

SessionScript = Callable[[VisitContext], None]

#: Probe endpoints an Elasticsearch recon tool may request.
ELASTIC_ENDPOINT_POOL = (
    "/", "/_nodes", "/_cluster/health", "/_cluster/stats", "/_stats",
    "/_cat/indices", "/_cat/shards", "/_cat/nodes", "/_cat/health",
    "/_aliases", "/_mapping", "/_cluster/settings", "/_search?q=*",
    "/_all/_search", "/robots.txt", "/favicon.ico", "/.env",
    "/_template", "/_plugins", "/version",
)

#: Commands a MongoDB recon tool may run.
MONGO_COMMAND_POOL = (
    "isMaster", "buildInfo", "serverStatus", "getLog", "ping",
    "whatsmyuri", "listDatabases", "listCollections", "hostInfo",
    "connectionStatus",
)

#: Probes a Redis recon tool may send.
REDIS_PROBE_POOL = (
    ("INFO",), ("INFO", "server"), ("CLIENT", "LIST"), ("PING",),
    ("DBSIZE",), ("CONFIG", "GET", "*"), ("CONFIG", "GET", "dir"),
    ("KEYS", "*"), ("SCAN", "0"), ("COMMAND",), ("ECHO", "hi"),
    ("MODULE", "LIST"), ("EXISTS", "backup"),
)

#: Post-login queries a PostgreSQL bot may issue.
PSQL_QUERY_POOL = (
    "SELECT version();", "SHOW server_version;", "SELECT 1;",
    "SELECT current_database();", "SELECT current_user;",
    "SHOW ssl;", "SELECT usename FROM pg_user;",
    "SELECT datname FROM pg_database;", "SET application_name = 'pg';",
    "SHOW data_directory;",
)

#: Credential-list variants used by the Sticky Elephant brute-force
#: clusters (the paper found 15 of them).
PSQL_BRUTE_CREDENTIAL_VARIANTS: tuple[tuple[tuple[str, str], ...], ...]


def _subsets(pool: tuple, count: int, *, min_size: int, max_size: int,
             seed: str, always_first: bool = False) -> list[tuple]:
    """Deterministically sample ``count`` distinct subsets of ``pool``."""
    rng = random.Random(f"toolkits:{seed}")
    seen: set[tuple] = set()
    subsets: list[tuple] = []
    attempts = 0
    while len(subsets) < count and attempts < count * 50:
        attempts += 1
        size = rng.randint(min_size, min(max_size, len(pool)))
        chosen = rng.sample(pool, size)
        if always_first and pool[0] not in chosen:
            chosen[0] = pool[0]
        subset = tuple(sorted(chosen, key=pool.index))
        if subset not in seen:
            seen.add(subset)
            subsets.append(subset)
    return subsets


ELASTIC_TOOLKITS = _subsets(ELASTIC_ENDPOINT_POOL, 56, min_size=1,
                            max_size=7, seed="elastic",
                            always_first=True)

MONGO_TOOLKITS = _subsets(MONGO_COMMAND_POOL, 24, min_size=1, max_size=5,
                          seed="mongo", always_first=True)

REDIS_TOOLKITS = _subsets(REDIS_PROBE_POOL, 18, min_size=1, max_size=4,
                          seed="redis")

PSQL_QUERY_TOOLKITS = _subsets(PSQL_QUERY_POOL, 48, min_size=0,
                               max_size=4, seed="psql")


def _brute_variants() -> tuple[tuple[tuple[str, str], ...], ...]:
    rng = random.Random("toolkits:psql-brute")
    usernames = ("postgres", "admin", "root", "test", "pgsql", "dbadmin",
                 "replicator", "backup")
    passwords = ("postgres", "123456", "password", "admin", "root",
                 "qwerty", "P@ssw0rd", "postgres123", "pg123456", "1234")
    variants = []
    for index in range(15):
        users = rng.sample(usernames, rng.randint(1, 3))
        chosen_passwords = rng.sample(passwords, rng.randint(3, 6))
        variants.append(tuple((user, password) for user in users
                              for password in chosen_passwords))
    return tuple(variants)


PSQL_BRUTE_CREDENTIAL_VARIANTS = _brute_variants()


def elastic_toolkit_script(endpoints: tuple[str, ...]) -> SessionScript:
    """Build a scout script requesting ``endpoints`` in order."""

    def script(ctx: VisitContext) -> None:
        client = ElasticClient(ctx.open())
        try:
            client.connect()
            for endpoint in endpoints:
                run_quietly(lambda e=endpoint: client.get(e))
        except WireError:
            pass
        finally:
            client.close()

    return script


def mongo_toolkit_script(commands: tuple[str, ...]) -> SessionScript:
    """Build a scout script running ``commands`` in order."""

    def script(ctx: VisitContext) -> None:
        client = MongoClient(ctx.open())
        try:
            client.connect()
            for command in commands:
                if command == "isMaster":
                    run_quietly(client.is_master_legacy)
                elif command == "listCollections":
                    run_quietly(lambda: client.command(
                        "customers", {"listCollections": 1}))
                else:
                    run_quietly(lambda c=command:
                                client.command("admin", {c: 1}))
        except WireError:
            pass
        finally:
            client.close()

    return script


def redis_toolkit_script(probes: tuple[tuple[str, ...], ...]
                         ) -> SessionScript:
    """Build a scout script sending ``probes`` in order."""

    def script(ctx: VisitContext) -> None:
        client = RedisClient(ctx.open())
        try:
            client.connect()
            for probe in probes:
                run_quietly(lambda p=probe: client.command(*p))
        except WireError:
            pass
        finally:
            client.close()

    return script


def psql_toolkit_script(queries: tuple[str, ...],
                        credential: tuple[str, str] = ("postgres",
                                                       "postgres"),
                        ) -> SessionScript:
    """Build a one-shot-login bot script issuing ``queries``."""

    def script(ctx: VisitContext) -> None:
        client = PostgresClient(ctx.open())
        try:
            client.connect()
            if not client.login(*credential):
                return
            for query in queries:
                run_quietly(lambda q=query: client.query(q))
        except WireError:
            pass
        finally:
            client.close()

    return script
