"""Actor model.

An :class:`Actor` is one source IP with a :class:`Behavior`.  Behaviors
compile into a list of :class:`Visit` objects -- (time, target, session
script) -- which the experiment driver executes in timestamp order.
Session scripts receive a :class:`VisitContext` that can open wires to
honeypots, so a single visit may span several connections (brute-force
sessions reconnect after every failed login, as the real protocols
require).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.clients.wire import Wire, WireError
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.deployment.plan import DeploymentPlan

#: Seconds in one experiment day.
DAY = 86400.0


class WireOpener(Protocol):
    """Opens a client wire to a deployment target (driver-provided)."""

    def __call__(self, target_key: str) -> Wire: ...


@dataclass
class VisitContext:
    """Runtime context handed to a session script."""

    opener: WireOpener
    target_key: str
    rng: random.Random

    def open(self, target_key: str | None = None) -> Wire:
        """Open a new connection to ``target_key`` (default: the visit
        target)."""
        return self.opener(target_key or self.target_key)


#: A session script: everything one actor does during one visit.
SessionScript = Callable[[VisitContext], None]


@dataclass(frozen=True)
class Visit:
    """One scheduled interaction of an actor with one target."""

    time_offset: float
    target_key: str
    script: SessionScript


class Behavior(abc.ABC):
    """Compiles an actor's activity into visits."""

    @abc.abstractmethod
    def visits(self, plan: "DeploymentPlan",
               rng: random.Random) -> list[Visit]:
        """Produce the actor's visits over the experiment window."""


@dataclass
class CompositeBehavior:
    """Concatenates the visits of several behaviors (e.g. a brute-forcer
    that also scans)."""

    parts: list[Behavior]

    def visits(self, plan: "DeploymentPlan",
               rng: random.Random) -> list[Visit]:
        visits: list[Visit] = []
        for part in self.parts:
            visits.extend(part.visits(plan, rng))
        visits.sort(key=lambda visit: visit.time_offset)
        return visits


Behavior.register(CompositeBehavior)


@dataclass
class Actor:
    """One source IP and its behavior program."""

    ip: str
    behavior: Behavior
    #: Ground-truth cohort label -- used only for scenario debugging and
    #: threat-intel snapshot construction, never read by the analysis.
    label: str = ""

    def compile(self, plan: "DeploymentPlan", seed: int) -> list[Visit]:
        """Deterministically expand the behavior into visits."""
        rng = random.Random(f"{seed}:{self.ip}")
        return self.behavior.visits(plan, rng)


def pick_active_days(rng: random.Random, total_days: int,
                     active_days: int) -> list[int]:
    """Choose which experiment days an actor is active on."""
    active_days = max(1, min(active_days, total_days))
    return sorted(rng.sample(range(total_days), active_days))


def day_time(rng: random.Random, day: int) -> float:
    """A uniformly random time offset within ``day``."""
    return day * DAY + rng.uniform(0, DAY - 1)


def connect_probe(ctx: VisitContext, target_key: str | None = None) -> None:
    """The canonical scanning interaction: connect, read, leave."""
    try:
        wire = ctx.open(target_key)
        wire.connect()
        wire.close()
    except WireError:
        pass


def run_quietly(action: Callable[[], object]) -> None:
    """Execute one client step, swallowing transport errors.

    Attack scripts in the wild ignore most failures and push on; ours do
    the same so one unexpected reply doesn't strand a whole campaign.
    """
    try:
        action()
    except WireError:
        pass
