"""Low-interaction-tier behaviors: port scanning and login brute force.

These actors generate the traffic analyzed in Section 5 of the paper:
scanners that only connect and leave, and brute-forcers that hammer the
login of one DBMS -- overwhelmingly MSSQL -- reconnecting after every
failed attempt as the real protocols require.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.agents.base import (Behavior, Visit, VisitContext, connect_probe,
                               day_time, pick_active_days)
from repro.agents.credentials import CredentialSampler
from repro.agents.pools import low_pool, low_scan_pool
from repro.clients import (MSSQLClient, MySQLClient, PostgresClient,
                           WireError)
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.deployment.plan import DeploymentPlan
from repro.netsim.clock import EXPERIMENT_DAYS


def _low_targets(plan: "DeploymentPlan", dbms: str,
                 scope: str) -> tuple[str, ...]:
    """Keys of low-interaction targets for ``dbms`` within ``scope``.

    ``scope`` is ``multi``, ``single``, or ``both``.  Resolved through
    the shared pool registry (:mod:`repro.agents.pools`), so repeated
    calls return the same cached tuple.
    """
    return low_pool(plan, dbms, scope)


@dataclass
class LowScanBehavior:
    """Connect-and-leave scanning over the low-interaction tier.

    Parameters
    ----------
    active_days:
        How many experiment days the source shows up on.
    probes_per_day:
        How many honeypots it touches per active day.
    dbms:
        Restrict probing to one service, or ``None`` for all four.
    scope:
        Which host groups to probe (``multi``/``single``/``both``).
    """

    active_days: int = 1
    probes_per_day: int = 4
    dbms: str | None = None
    scope: str = "both"

    def visits(self, plan: "DeploymentPlan",
               rng: random.Random) -> list[Visit]:
        services = ((self.dbms,) if self.dbms
                    else ("mysql", "postgresql", "redis", "mssql"))
        pool = low_scan_pool(plan, services, self.scope)
        single_pool: tuple[str, ...] = ()
        if self.scope == "both":
            # Range scanners sweep whole prefixes, so a source probing
            # both host groups reliably touches the (much smaller)
            # single-service group too -- guarantee one hit per day.
            single_pool = low_scan_pool(plan, services, "single")
        visits = []
        for day in pick_active_days(rng, EXPERIMENT_DAYS, self.active_days):
            count = min(self.probes_per_day, len(pool))
            keys = rng.sample(pool, count)
            if single_pool and not any(key in single_pool
                                       for key in keys):
                if len(keys) > 1:
                    keys[rng.randrange(len(keys))] = rng.choice(
                        single_pool)
                else:
                    # Keep the (likely multi-service) probe and add the
                    # single-service one, so one-probe days still cover
                    # both host groups.
                    keys.append(rng.choice(single_pool))
            for key in keys:
                visits.append(Visit(day_time(rng, day), key,
                                    connect_probe))
        return visits


Behavior.register(LowScanBehavior)


def _attempt_mssql(ctx: VisitContext, target_key: str, username: str,
                   password: str) -> None:
    client = MSSQLClient(ctx.open(target_key))
    try:
        client.connect()
        client.login(username, password)
    except WireError:
        pass
    finally:
        client.close()


def _attempt_mysql(ctx: VisitContext, target_key: str, username: str,
                   password: str) -> None:
    client = MySQLClient(ctx.open(target_key))
    try:
        client.connect()
        client.login(username, password)
    except WireError:
        pass
    finally:
        client.close()


def _attempt_postgres(ctx: VisitContext, target_key: str, username: str,
                      password: str) -> None:
    client = PostgresClient(ctx.open(target_key))
    try:
        client.connect()
        client.login(username, password)
    except WireError:
        pass
    finally:
        client.close()


_ATTEMPT = {
    "mssql": _attempt_mssql,
    "mysql": _attempt_mysql,
    "postgresql": _attempt_postgres,
}


@dataclass
class BruteForceBehavior:
    """Credential brute force against one DBMS.

    ``total_attempts`` login attempts are spread evenly over
    ``active_days`` days, in a handful of bursts per day.  Every attempt
    is one full protocol exchange over a fresh connection.
    """

    dbms: str = "mssql"
    total_attempts: int = 100
    active_days: int = 3
    scope: str = "both"
    sampler: CredentialSampler = field(default_factory=CredentialSampler)
    fixed_credential: tuple[str, str] | None = None

    def visits(self, plan: "DeploymentPlan",
               rng: random.Random) -> list[Visit]:
        if self.dbms not in _ATTEMPT:
            raise ValueError(f"cannot brute-force {self.dbms!r}")
        pool = _low_targets(plan, self.dbms, self.scope)
        days = pick_active_days(rng, EXPERIMENT_DAYS, self.active_days)
        per_day = max(1, self.total_attempts // len(days))
        targets = [rng.choice(pool) for _ in days]
        effective = min(len(days), self.total_attempts)
        if self.scope == "both" and effective >= 2:
            # A both-group brute-forcer with a multi-day campaign
            # attacks hosts from each group at least once; one-shot
            # sources keep their natural (host-proportional) choice.
            single = _low_targets(plan, self.dbms, "single")
            multi = _low_targets(plan, self.dbms, "multi")
            if not any(target in single for target in targets[:effective]):
                targets[0] = rng.choice(single)
            if not any(target in multi for target in targets[:effective]):
                targets[effective - 1] = rng.choice(multi)
        visits = []
        remaining = self.total_attempts
        for day, target in zip(days, targets):
            attempts = min(per_day, remaining)
            if attempts <= 0:
                break
            remaining -= attempts
            visits.append(Visit(day_time(rng, day), target,
                                self._burst(target, attempts)))
        return visits

    def _burst(self, target_key: str, attempts: int):
        attempt = _ATTEMPT[self.dbms]

        def script(ctx: VisitContext) -> None:
            for _ in range(attempts):
                if self.fixed_credential is not None:
                    username, password = self.fixed_credential
                else:
                    username, password = self.sampler.sample(ctx.rng)
                attempt(ctx, target_key, username, password)

        return script


Behavior.register(BruteForceBehavior)


@dataclass
class MisconfiguredClientBehavior:
    """A client that retries one credential pair, unchanged.

    The paper observes these on PostgreSQL: no real brute forcing, just
    the same combination once or repeatedly -- most likely services with
    stale connection strings rather than attackers.
    """

    dbms: str = "postgresql"
    credential: tuple[str, str] = ("postgres", "postgres")
    retries_per_day: int = 4
    active_days: int = 2
    scope: str = "both"

    def visits(self, plan: "DeploymentPlan",
               rng: random.Random) -> list[Visit]:
        behavior = BruteForceBehavior(
            dbms=self.dbms,
            total_attempts=self.retries_per_day * self.active_days,
            active_days=self.active_days, scope=self.scope,
            fixed_credential=self.credential)
        return behavior.visits(plan, rng)


Behavior.register(MisconfiguredClientBehavior)
