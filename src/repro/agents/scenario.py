"""Declarative scenario calibration tables.

Every constant here is lifted from the paper's reported numbers (Tables
5-11 and the Section 5/6 text) and drives the population builder in
:mod:`repro.agents.population`.  Login *volumes* are scaled by the
experiment's ``volume_scale`` at build time; *IP counts* are not scaled,
so population-level statistics (countries, ASes, retention) keep the
paper's magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.asdb import ASType


@dataclass(frozen=True)
class NamedAS:
    """One AS from Table 6 (plus AS208091 from the Section 5 text)."""

    asn: int
    name: str
    country: str          # registration country
    as_type: ASType
    low_ip_count: int     # low-interaction sources observed in this AS
    institutional_ips: int  # how many of them are institutional scanners


#: Table 6 (top-10 ASN by IP count) plus the Russian brute-force hoster.
NAMED_ASES: tuple[NamedAS, ...] = (
    NamedAS(6939, "HURRICANE", "United States", ASType.TELECOM, 643, 643),
    NamedAS(396982, "GOOGLE-CLOUD-PLATFORM", "United States",
            ASType.HOSTING, 560, 300),
    NamedAS(14061, "DIGITALOCEAN-ASN", "United States", ASType.HOSTING,
            392, 80),
    NamedAS(211298, "Constantine Cybersecurity Ltd.", "United Kingdom",
            ASType.SECURITY, 252, 252),
    NamedAS(14618, "AMAZON-AES", "United States", ASType.HOSTING, 154,
            100),
    NamedAS(135377, "UCLOUD INFORMATION TECHNOLOGY HK Ltd.", "Hong Kong",
            ASType.HOSTING, 142, 0),
    NamedAS(4134, "Chinanet", "China", ASType.TELECOM, 112, 0),
    NamedAS(4837, "CHINA UNICOM China169 Backbone", "China",
            ASType.TELECOM, 96, 0),
    NamedAS(398324, "CENSYS-ARIN-01", "United States", ASType.SECURITY,
            93, 93),
    NamedAS(63949, "Akamai Connected Cloud", "United States",
            ASType.HOSTING, 91, 0),
    NamedAS(208091, "XHOST-INTERNET-SOLUTIONS", "United Kingdom",
            ASType.HOSTING, 0, 0),
)

#: Institutional sources among the 3,340 low-interaction IPs (paper:
#: 1,468, identified via the Griffioen et al. list).
LOW_INSTITUTIONAL_TOTAL = 1468

#: Scanner-only low-interaction sources outside the named ASes, by
#: geolocation country.  Named-AS sources (2,535) plus these (303) plus
#: the brute-forcers not pinned to a named AS (502) total 3,340 -- the
#: paper's observed low-interaction population.
LOW_GENERIC_COUNTRY_IPS: dict[str, int] = {
    "China": 100,
    "United Kingdom": 35,
    "Germany": 25,
    "India": 20,
    "Netherlands": 15,
    "Brazil": 15,
    "France": 14,
    "Russia": 6,
    "Vietnam": 10,
    "South Korea": 5,
    "Indonesia": 5,
    "Japan": 5,
    "Singapore": 4,
    "Canada": 4,
    "Bulgaria": 4,
    "Italy": 3,
    "Spain": 3,
    "Poland": 3,
    "Turkey": 3,
    "Romania": 3,
    "Australia": 2,
    "Sweden": 2,
    "Taiwan": 2,
    "Mexico": 2,
    "Thailand": 2,
    "Iran": 1,
    "Egypt": 1,
    "South Africa": 1,
    "Pakistan": 1,
    "Philippines": 1,
    "Hong Kong": 1,
    "Malaysia": 1,
}


@dataclass(frozen=True)
class BruteCohort:
    """One brute-force cohort (a Table 5 row, or part of one)."""

    country: str
    ip_count: int
    logins: dict[str, int]       # dbms -> unscaled login attempts
    asn: int | None = None       # pin the cohort to a specific AS
    active_days: tuple[int, int] = (2, 6)   # min/max days active
    fixed_credential: tuple[str, str] | None = None


#: Table 5 decomposed into cohorts.  Volumes are the paper's unscaled
#: login attempt counts; the builder multiplies by ``volume_scale``.
BRUTE_COHORTS: tuple[BruteCohort, ...] = (
    # Russia: four heavy hitters in AS208091 (UK-registered hoster),
    # active 16-19 of the 20 days, ~4.15M attempts each.
    BruteCohort("Russia", 4, {"mssql": 16_628_000}, asn=208091,
                active_days=(16, 19)),
    BruteCohort("Russia", 5, {"mssql": 1_473, "mysql": 108},
                active_days=(1, 3)),
    # China: Chinanet carries the bulk (Table 6: 517,380 logins).
    BruteCohort("China", 30, {"mssql": 517_234, "mysql": 146}, asn=4134),
    BruteCohort("China", 10, {"mysql": 376}, asn=4837,
                active_days=(1, 3)),
    BruteCohort("China", 20, {"mssql": 364_276, "mysql": 2_335}),
    BruteCohort("Estonia", 2, {"mssql": 160_642, "mysql": 14},
                active_days=(4, 9)),
    BruteCohort("South Korea", 6, {"mssql": 76_005, "mysql": 21_522}),
    BruteCohort("Ukraine", 1, {"mssql": 96_999}, active_days=(6, 12)),
    BruteCohort("Iran", 1, {"mssql": 74_856}, active_days=(6, 12)),
    # United States: volume split across the hosting ASes of Table 6.
    BruteCohort("United States", 25, {"mysql": 5_101, "mssql": 182},
                asn=396982),
    BruteCohort("United States", 12, {"mysql": 1_028}, asn=14061,
                active_days=(1, 3)),
    BruteCohort("United States", 10, {"mysql": 1_270}, asn=63949,
                active_days=(1, 3)),
    BruteCohort("United States", 41, {"mssql": 54_361, "mysql": 5_224}),
    # The 13 PostgreSQL "logins" in the US are misconfigured clients
    # retrying one unchanged credential.
    BruteCohort("United States", 13, {"postgresql": 13},
                fixed_credential=("postgres", "postgres"),
                active_days=(1, 2)),
    BruteCohort("Georgia", 1, {"mssql": 62_850}, active_days=(6, 12)),
    BruteCohort("Greece", 1, {"mssql": 13_040}, active_days=(3, 6)),
    BruteCohort("India", 6, {"mssql": 12_472, "mysql": 19}),
    # Hong Kong's UCloud (Table 6: 643 logins).
    BruteCohort("Hong Kong", 2, {"mysql": 551, "mssql": 92},
                asn=135377, active_days=(1, 3)),
    # Constantine Cybersecurity's odd 202 MSSQL logins (Table 6).
    BruteCohort("United Kingdom", 4, {"mssql": 202}, asn=211298,
                active_days=(1, 2)),
    # The long tail: ~63k logins over hundreds of sources.
    BruteCohort("Vietnam", 80, {"mssql": 14_000}),
    BruteCohort("Brazil", 70, {"mssql": 12_000}),
    BruteCohort("Indonesia", 60, {"mssql": 10_000}),
    BruteCohort("Turkey", 50, {"mssql": 8_000}),
    BruteCohort("Thailand", 40, {"mssql": 7_000}),
    BruteCohort("Mexico", 35, {"mssql": 6_000}),
    BruteCohort("Pakistan", 30, {"mssql": 5_765, "mysql": 500}),
    BruteCohort("Philippines", 40, {"mssql": 4_800}),
)

#: Total brute-forcing sources (the paper observed 599).
BRUTE_TOTAL_IPS = sum(cohort.ip_count for cohort in BRUTE_COHORTS)

#: Total low-interaction sources (the paper observed 3,340).
LOW_TOTAL_IPS = 3340

#: Single- vs multi-service host populations (Section 5): 1,720 unique
#: IPs on single-service hosts, 3,163 on multi-service hosts, 1,543 on
#: both; 41 IPs brute-forced only single-service hosts, 295 only
#: multi-service hosts.
SINGLE_ONLY_IPS = 177
MULTI_ONLY_IPS = 1620
BOTH_IPS = 1543
BRUTE_SINGLE_ONLY = 41
BRUTE_MULTI_ONLY = 295

#: Single-day fraction among *scanner* actors, chosen so that the whole
#: low-interaction population (brute-forcers are multi-day) lands at the
#: paper's 43% single-day clients (Fig. 3).
SINGLE_DAY_SCANNER_FRACTION = 0.52


@dataclass(frozen=True)
class MidScanCohort:
    """Scanning-class actors on the medium/high tier."""

    dbms_set: tuple[str, ...]
    count: int
    institutional: bool


#: Calibrated to Table 8 scanning counts and the per-DBMS institutional
#: fractions of Section 6.1 (75% / 59% / 80% / 56%).
MID_SCAN_COHORTS: tuple[MidScanCohort, ...] = (
    # Institutional sweepers probing several services at once -- the
    # main source of cross-honeypot IP overlap in Figure 4.
    MidScanCohort(("elasticsearch", "mongodb", "postgresql", "redis"),
                  370, True),
    MidScanCohort(("elasticsearch", "mongodb", "postgresql"), 45, True),
    MidScanCohort(("elasticsearch", "mongodb", "postgresql", "redis"),
                  145, False),
    MidScanCohort(("elasticsearch",), 41, True),
    MidScanCohort(("elasticsearch",), 7, False),
    MidScanCohort(("mongodb",), 146, False),
    MidScanCohort(("postgresql",), 494, True),
    MidScanCohort(("postgresql",), 86, False),
    MidScanCohort(("redis",), 9, True),
    MidScanCohort(("redis",), 152, False),
)


@dataclass(frozen=True)
class ScoutCohort:
    """Scouting-class actors on one medium/high DBMS."""

    dbms: str
    style: str
    count: int
    institutional: bool = False
    active_days: tuple[int, int] = (1, 4)
    config: str | None = None


#: Calibrated to Table 8 scouting counts; styles map to the scout
#: scripts in :mod:`repro.agents.scouts`.
SCOUT_COHORTS: tuple[ScoutCohort, ...] = (
    # Elasticsearch: 627 scouts, incl. institutional cluster probing and
    # the six-IP deep URL-list cluster.
    ScoutCohort("elasticsearch", "basic", 400, institutional=True),
    ScoutCohort("elasticsearch", "basic", 204),
    ScoutCohort("elasticsearch", "url_list", 6),
    # MongoDB: 465 scouts; institutional scanners issue listDatabases /
    # listCollections (the privacy concern of Section 6.1).
    ScoutCohort("mongodb", "deep", 180, institutional=True),
    ScoutCohort("mongodb", "basic", 120, institutional=True),
    ScoutCohort("mongodb", "basic", 140),
    ScoutCohort("mongodb", "deep", 25),
    # Redis: 266 scouts; a cohort is aware of the fake data (KEYS + TYPE
    # per entry).
    ScoutCohort("redis", "basic", 130, institutional=True),
    ScoutCohort("redis", "basic", 70),
    ScoutCohort("redis", "fake_data", 45, config="fake_data"),
    # PostgreSQL: 345 single-login bots (the rest of the 593 scouts are
    # the brute-force and RDP cohorts below).
    ScoutCohort("postgresql", "basic", 245, config="default"),
    ScoutCohort("postgresql", "basic", 100, institutional=True,
                config="default"),
)

#: Brute-force scouts against the login-disabled Sticky Elephant config
#: (84 IPs, 15 clusters per Table 9).
PSQL_BRUTE_SCOUTS = 84
#: Redis medium-honeypot brute-forcers (5 IPs).
REDIS_BRUTE_SCOUTS = 5
#: RDP scanning: 164 IPs on PostgreSQL (3 clusters), 14 on Redis.
RDP_PSQL_IPS = 164
RDP_REDIS_IPS = 14
#: JDWP scanning on Redis (2 IPs).
JDWP_REDIS_IPS = 2
#: CraftCMS CVE-2023-41892 recon on Elasticsearch (2 IPs).
CRAFTCMS_IPS = 2
#: VMware CVE-2021-22005 recon on Elasticsearch (15 IPs, 2 clusters).
VMWARE_IPS = 15


@dataclass(frozen=True)
class CampaignCohort:
    """One exploit campaign (a Table 9 row)."""

    name: str
    dbms: str
    count: int
    countries: tuple[tuple[str, int], ...]
    active_days: tuple[int, int] = (4, 12)
    config: str | None = None


#: Exploit campaigns, with Table 10's per-country exploiter allocation.
CAMPAIGN_COHORTS: tuple[CampaignCohort, ...] = (
    CampaignCohort("p2pinfect", "redis", 35,
                   (("China", 19), ("Singapore", 6), ("United States", 1),
                    ("Bulgaria", 1), ("Netherlands", 1), ("Vietnam", 4),
                    ("India", 3))),
    CampaignCohort("abcbot", "redis", 1, (("China", 1),)),
    CampaignCohort("redis_cve_2022_0543", "redis", 1, (("China", 1),)),
    CampaignCohort("redis_vandal", "redis", 1, (("Vietnam", 1),)),
    CampaignCohort("kinsing", "postgresql", 196,
                   (("United States", 35), ("France", 30), ("Germany", 27),
                    ("China", 20), ("United Kingdom", 14), ("Russia", 12),
                    ("Indonesia", 7), ("Netherlands", 5), ("Bulgaria", 2),
                    ("Singapore", 4), ("Brazil", 14), ("India", 10),
                    ("Vietnam", 8), ("Japan", 8)),
                   config="default"),
    CampaignCohort("psql_privilege", "postgresql", 25,
                   (("United States", 4), ("Germany", 2), ("China", 2),
                    ("United Kingdom", 1), ("Netherlands", 1),
                    ("Poland", 6), ("Romania", 5), ("Turkey", 4)),
                   config="default"),
    CampaignCohort("psql_lockout", "postgresql", 1,
                   (("Bulgaria", 1),), config="default"),
    CampaignCohort("lucifer", "elasticsearch", 2, (("China", 2),)),
    CampaignCohort("ransom_group1", "mongodb", 35,
                   (("Bulgaria", 29), ("United States", 4),
                    ("United Kingdom", 2))),
    CampaignCohort("ransom_group2", "mongodb", 27,
                   (("United States", 8), ("Netherlands", 6),
                    ("Germany", 2), ("United Kingdom", 1),
                    ("Singapore", 1), ("Romania", 5), ("Poland", 4))),
)

#: AS-type mix per behavior class (Table 11, normalized by the builder).
AS_TYPE_MIX: dict[str, dict[ASType, int]] = {
    "scanning": {ASType.TELECOM: 1070, ASType.HOSTING: 1777,
                 ASType.SECURITY: 122, ASType.ICT: 2, ASType.BUSINESS: 1,
                 ASType.IP_SERVICE: 3, ASType.UNKNOWN: 155},
    "scouting": {ASType.TELECOM: 138, ASType.HOSTING: 1020,
                 ASType.SECURITY: 334, ASType.ICT: 61, ASType.BUSINESS: 3,
                 ASType.IP_SERVICE: 70, ASType.UNKNOWN: 325},
    "exploiting": {ASType.TELECOM: 34, ASType.HOSTING: 264,
                   ASType.ICT: 19, ASType.BUSINESS: 1,
                   ASType.UNIVERSITY: 1, ASType.UNKNOWN: 5},
}

#: Threat-intel coverage rates (Sections 5 and 6.2).
INTEL_BRUTE_GREYNOISE = 0.21
INTEL_BRUTE_ABUSEIPDB = 0.65
INTEL_BRUTE_CYMRU = 0.48
INTEL_EXPLOIT_GREYNOISE = 0.11
INTEL_EXPLOIT_ABUSEIPDB = 0.15
INTEL_EXPLOIT_CYMRU_IPS = 6


def campaign_total(dbms: str | None = None) -> int:
    """Total exploiter IPs (optionally for one DBMS) in the scenario."""
    return sum(cohort.count for cohort in CAMPAIGN_COHORTS
               if dbms is None or cohort.dbms == dbms)
