"""Credential corpora used by brute-force actors.

The head of the distribution matches Table 12 of the paper (the top-10
MSSQL username/password pairs, led by the undeletable ``sa``
administrator account); the long tail is generated deterministically to
mirror the paper's finding of 240k+ unique combinations, 14.5k unique
usernames and 227k unique passwords -- i.e. far more passwords than
usernames, with most volume concentrated on a few accounts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Table 12: top-10 MSSQL usernames/passwords observed by the paper.
TOP_MSSQL_CREDENTIALS: tuple[tuple[str, str], ...] = (
    ("sa", "123"),
    ("admin", "123456"),
    ("hbv7", ""),
    ("test", "1"),
    ("root", "aaaaaa"),
    ("user", "0"),
    ("administrator", "1234"),
    ("sa1", "P@ssw0rd"),
    ("petroleum", "12345"),
    ("sa2", "password"),
)

#: Common usernames tried against MySQL honeypots.
TOP_MYSQL_USERNAMES = ("root", "admin", "mysql", "test", "user", "web")

#: Common usernames tried against PostgreSQL honeypots.
TOP_POSTGRES_USERNAMES = ("postgres", "admin", "pgsql", "test")

_PASSWORD_STEMS = (
    "123456", "password", "admin", "qwerty", "letmein", "abc123",
    "welcome", "dragon", "master", "login", "passw0rd", "secret",
    "root", "toor", "sql2019", "server",
)


@dataclass
class CredentialSampler:
    """Weighted sampler over a head list plus a generated tail.

    Parameters
    ----------
    head:
        High-frequency pairs, sampled with probability ``head_weight``.
    head_weight:
        Probability mass of the head list.
    username_pool:
        Size of the generated username tail.
    tail_salt:
        Per-campaign salt so different actors generate different tails.
    """

    head: tuple[tuple[str, str], ...] = TOP_MSSQL_CREDENTIALS
    head_weight: float = 0.6
    username_pool: int = 400
    tail_salt: str = ""

    def sample(self, rng: random.Random) -> tuple[str, str]:
        """Draw one (username, password) pair."""
        if rng.random() < self.head_weight:
            # Zipf-flavored head: earlier entries dominate.
            rank = min(int(rng.expovariate(0.7)), len(self.head) - 1)
            return self.head[rank]
        return self._tail_username(rng), self._tail_password(rng)

    def sample_many(self, rng: random.Random,
                    count: int) -> list[tuple[str, str]]:
        """Draw ``count`` pairs."""
        return [self.sample(rng) for _ in range(count)]

    def _tail_username(self, rng: random.Random) -> str:
        if rng.random() < 0.7:
            # The bulk of tail attempts still target the admin account.
            return self.head[0][0]
        return f"user{self.tail_salt}{rng.randrange(self.username_pool)}"

    def _tail_password(self, rng: random.Random) -> str:
        stem = rng.choice(_PASSWORD_STEMS)
        style = rng.random()
        if style < 0.4:
            return f"{stem}{rng.randrange(10000)}"
        if style < 0.7:
            return f"{stem}{self.tail_salt}{rng.randrange(100000)}"
        return f"{stem.capitalize()}@{rng.randrange(1000)}"


def mssql_sampler(salt: str = "") -> CredentialSampler:
    """Sampler matching the observed MSSQL brute-force mix."""
    return CredentialSampler(head=TOP_MSSQL_CREDENTIALS, head_weight=0.55,
                             tail_salt=salt)


def mysql_sampler(salt: str = "") -> CredentialSampler:
    """Sampler for MySQL brute-forcers (root-heavy)."""
    head = tuple((user, pw) for user in TOP_MYSQL_USERNAMES[:3]
                 for pw in ("123456", "root", "password"))
    return CredentialSampler(head=head, head_weight=0.5, tail_salt=salt)


def postgres_sampler(salt: str = "") -> CredentialSampler:
    """Sampler for PostgreSQL login attempts (postgres-heavy)."""
    head = tuple((user, pw) for user in TOP_POSTGRES_USERNAMES[:2]
                 for pw in ("postgres", "123456", "password"))
    return CredentialSampler(head=head, head_weight=0.7, tail_salt=salt)
