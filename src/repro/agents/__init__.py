"""The synthetic Internet actor population.

This package is the reproduction's substitute for the live Internet (see
DESIGN.md): a deterministic, seeded cast of scanners, scouts,
brute-forcers and exploit campaigns, calibrated to the counts the paper
reports.  Every actor speaks the real wire protocols through
:mod:`repro.clients`; the analysis layer never imports from here.
"""

from repro.agents.base import Actor, Behavior, Visit, VisitContext

__all__ = ["Actor", "Behavior", "Visit", "VisitContext"]
