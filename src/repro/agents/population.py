"""Builds the full synthetic actor population ("the world").

:func:`build_world` turns the calibration tables of
:mod:`repro.agents.scenario` into a concrete cast of actors with
allocated IP addresses, an address space + GeoIP snapshot, the
institutional scanner list, and threat-intelligence platform snapshots
whose coverage matches the paper's findings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.agents import scenario
from repro.agents.base import Actor, CompositeBehavior
from repro.agents.credentials import (mssql_sampler, mysql_sampler,
                                      postgres_sampler)
from repro.agents.base import connect_probe
from repro.agents.exploits import (CampaignBehavior,
                                   MultiServiceProbeBehavior)
from repro.agents.exploits import (elastic_attacks, mongo_attacks,
                                   postgres_attacks, redis_attacks)
from repro.agents.lowint import (BruteForceBehavior, LowScanBehavior,
                                 MisconfiguredClientBehavior)
from repro.agents.scouts import (RestrictedPsqlBruteBehavior,
                                 ScoutBehavior)
from repro.agents import toolkits
from repro.netsim.address_space import AddressSpace
from repro.netsim.asdb import ASType
from repro.netsim.clock import EXPERIMENT_DAYS
from repro.netsim.geoip import GeoIPDatabase
from repro.pipeline.institutional import InstitutionalScannerList
from repro.threatintel.platforms import (AbuseReport, CymruRecord,
                                         GreynoiseRecord,
                                         ThreatIntelWorld)


@dataclass
class World:
    """Everything outside the honeypots: actors, address space, OSINT."""

    space: AddressSpace
    geoip: GeoIPDatabase
    scanners: InstitutionalScannerList
    intel: ThreatIntelWorld
    actors: list[Actor]
    #: Ground-truth cohort membership (label -> IPs); used to build the
    #: intel snapshots and by tests, never by the analysis pipeline.
    groups: dict[str, list[str]] = field(default_factory=dict)

    def ips(self, label: str) -> list[str]:
        """IPs of one ground-truth group."""
        return list(self.groups.get(label, []))


class _GenericASFactory:
    """Creates per-(country, type) filler ASes on demand."""

    _NAMES = {
        ASType.HOSTING: "HOSTCO",
        ASType.TELECOM: "TELECOM",
        ASType.SECURITY: "SECSCAN",
        ASType.ICT: "ICTSERV",
        ASType.IP_SERVICE: "IPBROKER",
        ASType.BUSINESS: "BIZCORP",
        ASType.UNIVERSITY: "UNIV",
        ASType.VPN: "VPNNET",
        ASType.UNKNOWN: "UNREG",
    }

    def __init__(self, space: AddressSpace):
        self._space = space
        self._next_asn = 210000
        self._asns: dict[tuple[str, ASType], int] = {}

    def get(self, country: str, as_type: ASType) -> int:
        key = (country, as_type)
        asn = self._asns.get(key)
        if asn is None:
            asn = self._next_asn
            self._next_asn += 1
            code = country.replace(" ", "").upper()[:8]
            self._space.register_as(
                asn, f"{self._NAMES[as_type]}-{code}", country, as_type)
            self._asns[key] = asn
        return asn


@dataclass
class _Builder:
    seed: int
    volume_scale: float
    space: AddressSpace = field(default_factory=AddressSpace)
    scanners: InstitutionalScannerList = field(
        default_factory=InstitutionalScannerList)
    actors: list[Actor] = field(default_factory=list)
    groups: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)
        self.generic = _GenericASFactory(self.space)
        for named in scenario.NAMED_ASES:
            self.space.register_as(named.asn, named.name, named.country,
                                   named.as_type)
        # Low-tier scope assignment counters (single/multi/both hosts).
        # Brute-forcers always scan both host groups, so they consume
        # part of the "both" budget up front.
        scanner_both = scenario.BOTH_IPS - scenario.BRUTE_TOTAL_IPS
        self._scope_pool = (["single"] * scenario.SINGLE_ONLY_IPS
                            + ["multi"] * scenario.MULTI_ONLY_IPS
                            + ["both"] * scanner_both)
        self.rng.shuffle(self._scope_pool)
        # Brute scope designations pop from the end: the heavy,
        # multi-day cohorts (built first) take "both" and attack both
        # host groups, while the one-shot tail splits into the
        # single-only / multi-only populations of Section 5.
        both_brute = (scenario.BRUTE_TOTAL_IPS
                      - scenario.BRUTE_SINGLE_ONLY
                      - scenario.BRUTE_MULTI_ONLY)
        self._brute_scope_pool = (
            ["multi"] * scenario.BRUTE_MULTI_ONLY
            + ["single"] * scenario.BRUTE_SINGLE_ONLY
            + ["both"] * both_brute)

    # -- helpers ------------------------------------------------------------

    def allocate(self, asn: int, country: str, label: str,
                 *, institutional: bool = False) -> str:
        ip = str(self.space.allocate(asn, country))
        self.groups.setdefault(label, []).append(ip)
        if institutional:
            self.scanners.add_ip(ip)
            self.groups.setdefault("institutional", []).append(ip)
        return ip

    def add_actor(self, ip: str, behavior, label: str) -> None:
        self.actors.append(Actor(ip=ip, behavior=behavior, label=label))

    def scale(self, volume: int) -> int:
        return max(1, round(volume * self.volume_scale))

    def low_active_days(self) -> int:
        """Sample a low-tier retention matching the Fig. 3 CDF shape."""
        if self.rng.random() < scenario.SINGLE_DAY_SCANNER_FRACTION:
            return 1
        days = 1 + round(self.rng.expovariate(1 / 3.0))
        return min(max(days, 2), EXPERIMENT_DAYS)

    def next_scope(self) -> str:
        if self._scope_pool:
            return self._scope_pool.pop()
        return "both"

    def next_brute_scope(self) -> str:
        if self._brute_scope_pool:
            return self._brute_scope_pool.pop()
        return "both"

    def class_asn(self, behavior_class: str, country: str) -> int:
        """Sample an AS for a medium/high actor per the Table 11 mix."""
        mix = scenario.AS_TYPE_MIX[behavior_class]
        types = list(mix)
        weights = [mix[t] for t in types]
        as_type = self.rng.choices(types, weights=weights)[0]
        return self.generic.get(country, as_type)

    def mid_country(self) -> str:
        """Background country mix for medium/high scanners/scouts."""
        return self.rng.choices(
            ["United States", "China", "Germany", "Netherlands", "France",
             "United Kingdom", "Russia", "Singapore", "Brazil", "India",
             "Japan", "Bulgaria", "Vietnam", "Canada"],
            weights=[30, 14, 8, 7, 6, 6, 5, 4, 4, 4, 3, 3, 3, 3])[0]

    # -- low tier ------------------------------------------------------------

    def build_low_tier(self) -> None:
        pinned_brute: dict[int, int] = {}
        for cohort in scenario.BRUTE_COHORTS:
            if cohort.asn is not None:
                pinned_brute[cohort.asn] = (pinned_brute.get(cohort.asn, 0)
                                            + cohort.ip_count)
        # Scanner-only sources inside the named ASes.
        for named in scenario.NAMED_ASES:
            scanner_count = named.low_ip_count - pinned_brute.get(
                named.asn, 0)
            for index in range(max(0, scanner_count)):
                institutional = index < named.institutional_ips
                ip = self.allocate(named.asn, named.country, "low_scanner",
                                   institutional=institutional)
                self.add_actor(ip, self._low_scan_behavior(),
                               "low_scanner")
        # Scanner-only sources in generic ASes.
        for country, count in scenario.LOW_GENERIC_COUNTRY_IPS.items():
            for _ in range(count):
                as_type = self.rng.choices(
                    [ASType.TELECOM, ASType.HOSTING, ASType.UNKNOWN],
                    weights=[5, 3, 2])[0]
                asn = self.generic.get(country, as_type)
                ip = self.allocate(asn, country, "low_scanner")
                self.add_actor(ip, self._low_scan_behavior(),
                               "low_scanner")
        # Brute-force cohorts.
        for cohort in scenario.BRUTE_COHORTS:
            self._build_brute_cohort(cohort)

    def _low_scan_behavior(self) -> LowScanBehavior:
        return LowScanBehavior(
            active_days=self.low_active_days(),
            probes_per_day=self.rng.randint(1, 6),
            scope=self.next_scope())

    def _build_brute_cohort(self, cohort: scenario.BruteCohort) -> None:
        samplers = {"mssql": mssql_sampler, "mysql": mysql_sampler,
                    "postgresql": postgres_sampler}
        for index in range(cohort.ip_count):
            if cohort.asn is not None:
                asn = cohort.asn
            else:
                as_type = self.rng.choices(
                    [ASType.HOSTING, ASType.TELECOM, ASType.UNKNOWN],
                    weights=[6, 2, 2])[0]
                asn = self.generic.get(cohort.country, as_type)
            label = ("low_brute_heavy"
                     if sum(cohort.logins.values()) > 1_000_000
                     else "low_brute")
            ip = self.allocate(asn, cohort.country, label)
            active = self.rng.randint(*cohort.active_days)
            scope = self.next_brute_scope()
            parts = [LowScanBehavior(active_days=min(active, 3),
                                     probes_per_day=2, scope="both")]
            dominant = max(cohort.logins, key=cohort.logins.get)
            for dbms, volume in cohort.logins.items():
                scaled = self.scale(volume)
                attempts = scaled // cohort.ip_count
                if index < scaled % cohort.ip_count:
                    attempts += 1
                if dbms == dominant:
                    # Every brute-force source logs in at least once (on
                    # its primary target service), so the #IP columns of
                    # Table 5 survive aggressive downscaling.
                    attempts = max(attempts, 1)
                if attempts <= 0:
                    continue
                if cohort.fixed_credential is not None:
                    parts.append(MisconfiguredClientBehavior(
                        dbms=dbms, credential=cohort.fixed_credential,
                        retries_per_day=max(1, attempts // max(1, active)),
                        active_days=active, scope=scope))
                else:
                    salt = f"{ip.replace('.', '')[:6]}"
                    parts.append(BruteForceBehavior(
                        dbms=dbms, total_attempts=attempts,
                        active_days=active, scope=scope,
                        sampler=samplers[dbms](salt=salt)))
            self.add_actor(ip, CompositeBehavior(parts), "low_brute")

    # -- medium/high tier -----------------------------------------------------

    def build_mid_tier(self) -> None:
        self._build_mid_scanners()
        self._build_scouts()
        self._build_service_probes()
        self._build_campaigns()

    def _build_mid_scanners(self) -> None:
        for cohort in scenario.MID_SCAN_COHORTS:
            for _ in range(cohort.count):
                country = self.mid_country()
                if cohort.institutional:
                    as_type = self.rng.choices(
                        [ASType.SECURITY, ASType.HOSTING, ASType.TELECOM],
                        weights=[2, 5, 3])[0]
                    asn = self.generic.get(country, as_type)
                else:
                    asn = self.class_asn("scanning", country)
                ip = self.allocate(asn, country, "mid_scanner",
                                   institutional=cohort.institutional)
                active_days = (1 if self.rng.random() < 0.75
                               else self.rng.randint(2, 3))
                # One behavior across all probed services, so a sweeper
                # hits every service on the same days (its retention is
                # a property of the source, not of each honeypot).
                behavior = MultiServiceProbeBehavior(
                    dbms_set=cohort.dbms_set, script=connect_probe,
                    active_days=active_days,
                    probes_per_day=self.rng.randint(1, 2))
                self.add_actor(ip, behavior, "mid_scanner")

    def _build_scouts(self) -> None:
        for cohort in scenario.SCOUT_COHORTS:
            for _ in range(cohort.count):
                country = self.mid_country()
                if cohort.institutional:
                    asn = self.generic.get(country, self.rng.choices(
                        [ASType.SECURITY, ASType.HOSTING],
                        weights=[2, 3])[0])
                else:
                    asn = self.class_asn("scouting", country)
                ip = self.allocate(asn, country, "mid_scout",
                                   institutional=cohort.institutional)
                behavior = ScoutBehavior(
                    dbms=cohort.dbms, style=cohort.style,
                    active_days=self.rng.randint(*cohort.active_days),
                    config=cohort.config,
                    script=self._scout_toolkit(cohort))
                self.add_actor(ip, behavior, "mid_scout")
        # Brute-force scouts against the restricted Sticky Elephant.
        for index in range(scenario.PSQL_BRUTE_SCOUTS):
            country = self.mid_country()
            asn = self.class_asn("scouting", country)
            ip = self.allocate(asn, country, "psql_brute_scout")
            variant = toolkits.PSQL_BRUTE_CREDENTIAL_VARIANTS[
                index % len(toolkits.PSQL_BRUTE_CREDENTIAL_VARIANTS)]
            self.add_actor(ip, RestrictedPsqlBruteBehavior(
                attempts_per_day=self.scale_mid_brute(),
                active_days=self.rng.randint(1, 5),
                credentials=variant), "psql_brute_scout")
        # Redis AUTH brute-forcers.
        for _ in range(scenario.REDIS_BRUTE_SCOUTS):
            country = self.mid_country()
            asn = self.class_asn("scouting", country)
            ip = self.allocate(asn, country, "redis_brute_scout")
            self.add_actor(ip, CampaignBehavior(
                dbms="redis", script=redis_attacks.redis_bruteforce_script,
                active_days=self.rng.randint(1, 3)), "redis_brute_scout")

    def _scout_toolkit(self, cohort: scenario.ScoutCohort):
        """Pick a tool-specific probe script for one scout actor.

        Most scouts run one of the deterministic toolkits (which is what
        produces the cluster diversity of Table 8); the rest keep the
        cohort's default style script.
        """
        if cohort.style != "basic" or self.rng.random() < 0.15:
            return None
        if cohort.dbms == "elasticsearch":
            endpoints = self.rng.choice(toolkits.ELASTIC_TOOLKITS)
            return toolkits.elastic_toolkit_script(endpoints)
        if cohort.dbms == "mongodb":
            commands = self.rng.choice(toolkits.MONGO_TOOLKITS)
            return toolkits.mongo_toolkit_script(commands)
        if cohort.dbms == "redis":
            probes = self.rng.choice(toolkits.REDIS_TOOLKITS)
            return toolkits.redis_toolkit_script(probes)
        if cohort.dbms == "postgresql":
            queries = self.rng.choice(toolkits.PSQL_QUERY_TOOLKITS)
            return toolkits.psql_toolkit_script(queries)
        return None

    def scale_mid_brute(self) -> int:
        # Restricted-config PostgreSQL drew 29,217 logins over 84 sources
        # and 20 days; keep the per-day volume proportionate.
        per_day = 29_217 / scenario.PSQL_BRUTE_SCOUTS / 3
        return max(2, round(per_day * max(self.volume_scale, 0.02) * 10))

    def _build_service_probes(self) -> None:
        # RDP scanners: most touch only PostgreSQL; a smaller group also
        # probes Redis (the cross-DBMS pattern of Fig. 4).
        for index in range(scenario.RDP_PSQL_IPS):
            country = self.mid_country()
            asn = self.class_asn("scouting", country)
            ip = self.allocate(asn, country, "rdp_scanner")
            dbms_set = (("postgresql", "redis")
                        if index < scenario.RDP_REDIS_IPS
                        else ("postgresql",))
            script = redis_attacks.make_rdp_script(index % 3)
            self.add_actor(ip, MultiServiceProbeBehavior(
                dbms_set=dbms_set, script=script,
                active_days=self.rng.randint(1, 3)), "rdp_scanner")
        for _ in range(scenario.JDWP_REDIS_IPS):
            country = self.mid_country()
            asn = self.class_asn("scouting", country)
            ip = self.allocate(asn, country, "jdwp_scanner")
            self.add_actor(ip, MultiServiceProbeBehavior(
                dbms_set=("redis",),
                script=redis_attacks.jdwp_scan_script,
                active_days=1), "jdwp_scanner")
        for _ in range(scenario.CRAFTCMS_IPS):
            country = self.mid_country()
            asn = self.class_asn("scouting", country)
            ip = self.allocate(asn, country, "craftcms_scanner")
            self.add_actor(ip, CampaignBehavior(
                dbms="elasticsearch",
                script=elastic_attacks.craftcms_scan_script,
                active_days=1), "craftcms_scanner")
        for index in range(scenario.VMWARE_IPS):
            country = self.mid_country()
            asn = self.class_asn("scouting", country)
            ip = self.allocate(asn, country, "vmware_scanner")
            self.add_actor(ip, CampaignBehavior(
                dbms="elasticsearch",
                script=elastic_attacks.make_vmware_script(index % 2),
                active_days=self.rng.randint(1, 2)), "vmware_scanner")

    _CAMPAIGN_SCRIPTS = {
        "p2pinfect": redis_attacks.p2pinfect_script,
        "abcbot": redis_attacks.abcbot_script,
        "redis_cve_2022_0543": redis_attacks.cve_2022_0543_script,
        "redis_vandal": redis_attacks.redis_vandal_script,
        "kinsing": postgres_attacks.kinsing_script,
        "psql_privilege": postgres_attacks.privilege_manipulation_script,
        "psql_lockout": postgres_attacks.lock_out_script,
        "lucifer": elastic_attacks.lucifer_script,
        "ransom_group1": mongo_attacks.ransom_group1_script,
        "ransom_group2": mongo_attacks.ransom_group2_script,
    }

    def _build_campaigns(self) -> None:
        for cohort in scenario.CAMPAIGN_COHORTS:
            countries = self._expand_countries(cohort)
            for index, country in enumerate(countries):
                script = self._campaign_script(cohort.name, index)
                asn = self.class_asn("exploiting", country)
                ip = self.allocate(asn, country, cohort.name)
                self.groups.setdefault("exploiter", []).append(ip)
                self.add_actor(ip, CampaignBehavior(
                    dbms=cohort.dbms, script=script,
                    active_days=self.rng.randint(*cohort.active_days),
                    config=cohort.config), cohort.name)

    def _campaign_script(self, name: str, index: int):
        """The session script for one campaign member; campaigns with
        several bot revisions (Kinsing: 4, privilege: 3) split their
        members across the variants."""
        if name == "kinsing":
            # Four builds, dominated by the base one (Table 9: 196 IPs,
            # 4 clusters).
            if index < 120:
                return postgres_attacks.make_kinsing_script(0)
            if index < 160:
                return postgres_attacks.make_kinsing_script(1)
            if index < 182:
                return postgres_attacks.make_kinsing_script(2)
            return postgres_attacks.make_kinsing_script(3)
        if name == "psql_privilege":
            return postgres_attacks.make_privilege_script(index % 3)
        return self._CAMPAIGN_SCRIPTS[name]

    def _expand_countries(self,
                          cohort: scenario.CampaignCohort) -> list[str]:
        countries = [country
                     for country, count in cohort.countries
                     for _ in range(count)]
        filler = ["Vietnam", "Brazil", "India", "Thailand", "Turkey"]
        while len(countries) < cohort.count:
            countries.append(self.rng.choice(filler))
        return countries[:cohort.count]

    # -- threat intel ------------------------------------------------------------

    def build_intel(self) -> ThreatIntelWorld:
        intel = ThreatIntelWorld()
        rng = random.Random(f"{self.seed}:intel")
        brute_ips = (self.groups.get("low_brute", [])
                     + self.groups.get("low_brute_heavy", []))
        exploit_ips = self.groups.get("exploiter", [])
        self._intel_for_brute(intel, rng, sorted(set(brute_ips)))
        self._intel_for_exploiters(intel, rng, sorted(set(exploit_ips)))
        # Institutional scanners are known to Greynoise as benign.
        for ip in self.groups.get("institutional", []):
            if intel.greynoise.lookup(ip) is None:
                intel.greynoise.add(GreynoiseRecord(
                    ip, "benign", tags=("acknowledged scanner",)))
        # FEODO tracks a disjoint set of botnet C2s (the paper found no
        # overlap with its loaders).
        feodo_asn = self.generic.get("Moldova", ASType.HOSTING)
        for _ in range(25):
            intel.feodo.add(str(self.space.allocate(feodo_asn, "Moldova")))
        return intel

    def _intel_for_brute(self, intel: ThreatIntelWorld,
                         rng: random.Random, ips: list[str]) -> None:
        for ip in ips:
            roll = rng.random()
            if roll < scenario.INTEL_BRUTE_GREYNOISE:
                intel.greynoise.add(GreynoiseRecord(
                    ip, "malicious", tags=("MSSQL bruteforcer",)))
            elif roll < 0.85:
                intel.greynoise.add(GreynoiseRecord(
                    ip, "unknown", tags=("scanner",)))
            if rng.random() < scenario.INTEL_BRUTE_ABUSEIPDB:
                intel.abuseipdb.add(AbuseReport(
                    ip, rng.choice(["port scan", "brute-force"]),
                    rng.randint(1, 179)))
            if rng.random() < scenario.INTEL_BRUTE_CYMRU:
                intel.teamcymru.add(CymruRecord(
                    ip, "suspicious",
                    tags=(rng.choice(["mssql scanner", "ssh scanner",
                                      "telnet scanner", "vpn scanner"]),)))

    def _intel_for_exploiters(self, intel: ThreatIntelWorld,
                              rng: random.Random, ips: list[str]) -> None:
        p2p_ips = set(self.groups.get("p2pinfect", []))
        cymru_budget = scenario.INTEL_EXPLOIT_CYMRU_IPS
        for ip in ips:
            if rng.random() < scenario.INTEL_EXPLOIT_GREYNOISE:
                # Flagged malicious, but for unrelated activity.
                intel.greynoise.add(GreynoiseRecord(
                    ip, "malicious",
                    tags=(rng.choice(["SSH bruteforcer", "web crawler",
                                      "SMB scanner"]),),
                    cves=(rng.choice(["CVE-2017-0144", "CVE-2019-0708"]),)))
            elif ip in p2p_ips and rng.random() < 0.9:
                # Most P2PInfect machines are *known* to Greynoise but
                # not flagged for P2P activity (Section 6.2).
                intel.greynoise.add(GreynoiseRecord(
                    ip, "unknown", tags=("generic scanner",)))
            if rng.random() < scenario.INTEL_EXPLOIT_ABUSEIPDB:
                intel.abuseipdb.add(AbuseReport(
                    ip, rng.choice(["port scan", "sql injection",
                                    "ssh brute-force"]),
                    rng.randint(1, 179)))
            if cymru_budget > 0 and rng.random() < 0.03:
                cymru_budget -= 1
                intel.teamcymru.add(CymruRecord(
                    ip, "suspicious",
                    tags=(rng.choice(["redis scanner", "ssh scanner",
                                      "vpn scanner"]),)))


def build_world(seed: int = 2024, volume_scale: float = 0.002) -> World:
    """Construct the complete synthetic world.

    Parameters
    ----------
    seed:
        Master seed; the same seed yields byte-identical traffic.
    volume_scale:
        Multiplier applied to per-actor login volumes (the paper's 18.2M
        login attempts are impractical to replay event by event).  IP
        counts are never scaled.
    """
    if not 0 < volume_scale <= 1:
        raise ValueError("volume_scale must be in (0, 1]")
    builder = _Builder(seed=seed, volume_scale=volume_scale)
    builder.build_low_tier()
    builder.build_mid_tier()
    intel = builder.build_intel()
    geoip = GeoIPDatabase.from_address_space(builder.space)
    return World(space=builder.space, geoip=geoip,
                 scanners=builder.scanners, intel=intel,
                 actors=builder.actors, groups=builder.groups)
