"""Medium/high-tier scanning and scouting behaviors (Section 6).

Scouts authenticate, enumerate, or retrieve data without modifying
anything: cluster-info probes against Elasticsearch, ``listDatabases`` /
``listCollections`` against MongoDB, ``INFO``/``CLIENT LIST`` against
Redis, single login probes against PostgreSQL -- including the
institutional scanners whose deep probing the paper calls out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.agents.base import (Behavior, Visit, VisitContext, connect_probe,
                               day_time, pick_active_days, run_quietly)
from repro.agents.pools import midhigh_pool
from repro.clients import (ElasticClient, MongoClient, PostgresClient,
                           RedisClient, WireError)
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.deployment.plan import DeploymentPlan
from repro.netsim.clock import EXPERIMENT_DAYS


def midhigh_targets(plan: "DeploymentPlan", dbms: str,
                    config: str | None = None) -> tuple[str, ...]:
    """Keys of medium/high targets for one DBMS, via the shared pool
    registry (:mod:`repro.agents.pools`)."""
    return midhigh_pool(plan, dbms, config)


@dataclass
class MidScanBehavior:
    """Connect-and-leave scanning over the medium/high tier."""

    dbms: str = "postgresql"
    active_days: int = 1
    probes_per_day: int = 2

    def visits(self, plan: "DeploymentPlan",
               rng: random.Random) -> list[Visit]:
        pool = midhigh_targets(plan, self.dbms)
        visits = []
        for day in pick_active_days(rng, EXPERIMENT_DAYS, self.active_days):
            for key in rng.sample(pool, min(self.probes_per_day,
                                            len(pool))):
                visits.append(Visit(day_time(rng, day), key, connect_probe))
        return visits


Behavior.register(MidScanBehavior)


def _elastic_basic_scout(ctx: VisitContext) -> None:
    client = ElasticClient(ctx.open())
    try:
        client.connect()
        run_quietly(lambda: client.get("/"))
        run_quietly(lambda: client.get("/_nodes"))
        run_quietly(lambda: client.get("/_cluster/health"))
    except WireError:
        pass
    finally:
        client.close()


#: The URL list used by the six-IP deep-enumeration cluster the paper
#: observed against Elasticsearch.
ELASTIC_URL_LIST = (
    "/", "/_nodes", "/_cluster/health", "/_cluster/stats", "/_stats",
    "/_cat/indices", "/_cat/shards", "/_aliases", "/_mapping",
    "/_search?q=*", "/_all/_search", "/customers/_search", "/.env",
    "/favicon.ico",
)


def _elastic_url_list_scout(ctx: VisitContext) -> None:
    client = ElasticClient(ctx.open())
    try:
        client.connect()
        for url in ELASTIC_URL_LIST:
            run_quietly(lambda url=url: client.get(url))
    except WireError:
        pass
    finally:
        client.close()


def _mongo_basic_scout(ctx: VisitContext) -> None:
    client = MongoClient(ctx.open())
    try:
        client.connect()
        run_quietly(client.is_master_legacy)
        run_quietly(lambda: client.command("admin", {"buildInfo": 1}))
    except WireError:
        pass
    finally:
        client.close()


def _mongo_deep_scout(ctx: VisitContext) -> None:
    # The institutional behavior the paper flags: listDatabases and
    # listCollections expose a roadmap of the stored data.
    client = MongoClient(ctx.open())
    try:
        client.connect()
        run_quietly(client.is_master_legacy)
        run_quietly(lambda: client.command("admin", {"buildInfo": 1}))
        databases = []
        run_quietly(lambda: databases.extend(client.list_databases()))
        for database in databases:
            run_quietly(lambda db=database: client.list_collections(db))
    except WireError:
        pass
    finally:
        client.close()


def _redis_basic_scout(ctx: VisitContext) -> None:
    client = RedisClient(ctx.open())
    try:
        client.connect()
        run_quietly(lambda: client.command("INFO"))
        run_quietly(lambda: client.command("CLIENT", "LIST"))
    except WireError:
        pass
    finally:
        client.close()


def _redis_fake_data_scout(ctx: VisitContext) -> None:
    # The fake-data-aware pattern of Section 6: list every key, then TYPE
    # each one to probe its structure.
    client = RedisClient(ctx.open())
    try:
        client.connect()
        run_quietly(lambda: client.command("INFO"))
        keys = client.command("KEYS", "*")
        if isinstance(keys, list):
            for key in keys:
                if isinstance(key, bytes):
                    run_quietly(lambda k=key: client.command("TYPE", k))
    except WireError:
        pass
    finally:
        client.close()


def _postgres_single_login_scout(ctx: VisitContext) -> None:
    # Open-config bots log in once as part of their script, no brute
    # force (the paper's observation about the default configuration).
    client = PostgresClient(ctx.open())
    try:
        client.connect()
        client.login("postgres", "postgres")
        client.query("SELECT version();")
    except WireError:
        pass
    finally:
        client.close()


_SCOUT_SCRIPTS = {
    ("elasticsearch", "basic"): _elastic_basic_scout,
    ("elasticsearch", "url_list"): _elastic_url_list_scout,
    ("mongodb", "basic"): _mongo_basic_scout,
    ("mongodb", "deep"): _mongo_deep_scout,
    ("redis", "basic"): _redis_basic_scout,
    ("redis", "fake_data"): _redis_fake_data_scout,
    ("postgresql", "basic"): _postgres_single_login_scout,
}


@dataclass
class ScoutBehavior:
    """Information gathering against one medium/high DBMS.

    ``style`` selects the probing depth; see ``_SCOUT_SCRIPTS``.
    """

    dbms: str = "elasticsearch"
    style: str = "basic"
    active_days: int = 1
    visits_per_day: int = 1
    config: str | None = None
    #: Optional custom session script (a toolkit from
    #: :mod:`repro.agents.toolkits`); overrides ``style``.
    script: object | None = None

    def visits(self, plan: "DeploymentPlan",
               rng: random.Random) -> list[Visit]:
        script = self.script or _SCOUT_SCRIPTS.get((self.dbms, self.style))
        if script is None:
            raise ValueError(
                f"no scout script for {self.dbms}/{self.style}")
        pool = midhigh_targets(plan, self.dbms, self.config)
        visits = []
        for day in pick_active_days(rng, EXPERIMENT_DAYS,
                                    self.active_days):
            for _ in range(self.visits_per_day):
                visits.append(Visit(day_time(rng, day), rng.choice(pool),
                                    script))
        return visits


Behavior.register(ScoutBehavior)


@dataclass
class RestrictedPsqlBruteBehavior:
    """Aggressive credential attack against the login-disabled
    PostgreSQL configuration (which the paper found attracted ~2x the
    login attempts of the open one)."""

    attempts_per_day: int = 40
    active_days: int = 2
    credentials: tuple[tuple[str, str], ...] = (
        ("postgres", "postgres"), ("postgres", "123456"),
        ("postgres", "password"), ("admin", "admin"),
        ("postgres", "postgres123"), ("root", "root"),
    )

    def visits(self, plan: "DeploymentPlan",
               rng: random.Random) -> list[Visit]:
        pool = midhigh_targets(plan, "postgresql",
                               config="login_disabled")
        visits = []
        for day in pick_active_days(rng, EXPERIMENT_DAYS,
                                    self.active_days):
            target = rng.choice(pool)
            visits.append(Visit(day_time(rng, day), target,
                                self._burst(self.attempts_per_day)))
        return visits

    def _burst(self, attempts: int):
        def script(ctx: VisitContext) -> None:
            for index in range(attempts):
                client = PostgresClient(ctx.open())
                try:
                    client.connect()
                    username, password = self.credentials[
                        index % len(self.credentials)]
                    if index >= len(self.credentials):
                        password = f"{password}{ctx.rng.randrange(1000)}"
                    client.login(username, password)
                except WireError:
                    pass
                finally:
                    client.close()

        return script


Behavior.register(RestrictedPsqlBruteBehavior)
