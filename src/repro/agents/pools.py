"""Shared target-pool registry for the behavior compile hot path.

Roughly 7k behavior ``compile()`` calls ask the plan for the same
handful of ``(dbms, scope)`` target pools.  Before this registry each
call rebuilt its pool from ``plan.select()`` scans; now every distinct
pool is resolved exactly once per plan and handed out as a shared,
immutable tuple.  Tuples are drop-in for the consumers -- ``rng.sample``,
``rng.choice`` and membership tests depend only on sequence content and
length, so the RNG draw streams (and therefore the compiled schedule)
are byte-identical to the per-call list era.

The cache lives on the plan itself (``plan._pool_cache``, created in
``DeploymentPlan.__post_init__``) rather than in a module-global map:
plans are mutable dataclasses (unhashable), and tying the cache to the
plan's lifetime means tests that build many plans never cross-talk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.deployment.plan import DeploymentPlan


def low_pool(plan: "DeploymentPlan", dbms: str,
             scope: str) -> tuple[str, ...]:
    """Keys of low-interaction targets for ``dbms`` within ``scope``.

    ``scope`` is ``multi``, ``single``, or ``both``; ``both``
    concatenates multi then single, matching the historical ordering
    that the compiled RNG draws depend on.
    """
    cache = plan._pool_cache
    bucket = ("low", dbms, scope)
    pool = cache.get(bucket)
    if pool is None:
        keys: tuple[str, ...] = ()
        if scope in ("multi", "both"):
            keys += plan.select_keys(interaction="low", dbms=dbms,
                                     config="multi")
        if scope in ("single", "both"):
            keys += plan.select_keys(interaction="low", dbms=dbms,
                                     config="single")
        if not keys:
            raise ValueError(
                f"no low-interaction targets for {dbms}/{scope}")
        pool = cache[bucket] = keys
    return pool


def low_scan_pool(plan: "DeploymentPlan", services: tuple[str, ...],
                  scope: str) -> tuple[str, ...]:
    """Concatenated :func:`low_pool` across ``services``, in order."""
    cache = plan._pool_cache
    bucket = ("low-scan", services, scope)
    pool = cache.get(bucket)
    if pool is None:
        keys: tuple[str, ...] = ()
        for service in services:
            keys += low_pool(plan, service, scope)
        pool = cache[bucket] = keys
    return pool


def midhigh_pool(plan: "DeploymentPlan", dbms: str,
                 config: str | None = None) -> tuple[str, ...]:
    """Keys of medium/high targets for one DBMS (MongoDB is the only
    high-interaction deployment; everything else is medium)."""
    cache = plan._pool_cache
    bucket = ("midhigh", dbms, config)
    pool = cache.get(bucket)
    if pool is None:
        interaction = "high" if dbms == "mongodb" else "medium"
        pool = cache[bucket] = plan.select_keys(
            interaction=interaction, dbms=dbms, config=config)
    return pool
